//! Phrase-level polarity scoring.
//!
//! Per the paper: "The sentiment of a phrase is determined by the sentiment
//! words in the phrase. For example, excellent pictures (JJ NN) is a
//! positive sentiment phrase because excellent (JJ) is a positive sentiment
//! word. For a sentiment phrase with an adverb with negative meaning, such
//! as not, no, never, hardly, seldom, or little, the sentiment polarity of
//! the phrase is reversed."

use wf_lexicon::{PosClass, SentimentLexicon};
use wf_nlp::clause::is_negation_word;
use wf_nlp::{lemma, AnalyzedSentence, PosTag};
use wf_types::Polarity;

/// Maps a Penn tag to the lexicon's coarse POS class.
fn pos_class(tag: PosTag) -> Option<PosClass> {
    if tag.is_adjective() {
        Some(PosClass::Adjective)
    } else if tag.is_common_noun() {
        Some(PosClass::Noun)
    } else if tag.is_verb() {
        Some(PosClass::Verb)
    } else if tag.is_adverb() {
        Some(PosClass::Adverb)
    } else {
        None
    }
}

/// Normalized lookup key for a token: verb lemma / singular noun /
/// lower-cased surface otherwise.
fn lookup_key(sentence: &AnalyzedSentence, i: usize) -> String {
    lemma::lemmatize(&sentence.tokens[i].lower(), sentence.tags[i])
}

/// Scores the polarity of the token range `[start, end)` of a sentence.
///
/// The score sums lexicon polarities of the tokens (POS-checked, using
/// lemmas for verbs and singulars for nouns), plus multi-word lexicon
/// entries up to the lexicon's longest entry. Any negating word inside the
/// range reverses the total.
pub fn phrase_polarity(
    sentence: &AnalyzedSentence,
    range: (usize, usize),
    lexicon: &SentimentLexicon,
) -> Polarity {
    let (start, end) = range;
    let end = end.min(sentence.tokens.len());
    if start >= end {
        return Polarity::Neutral;
    }
    let mut score = 0i32;
    let mut negated = false;
    for i in start..end {
        let tag = sentence.tags[i];
        let lower = sentence.tokens[i].lower();
        // "less reliable" / "fewer problems" reverse like negators do;
        // unlike them they also act in adjectival position (JJR/RBR)
        let downward = matches!(lower.as_str(), "less" | "fewer");
        let negates = (is_negation_word(&lower)
            && (tag.is_adverb() || tag == PosTag::DT || tag == PosTag::IN))
            || (downward && (tag.is_adverb() || tag.is_adjective()));
        if negates {
            negated = !negated;
            continue;
        }
        if let Some(class) = pos_class(tag) {
            let key = lookup_key(sentence, i);
            if let Some(p) = lexicon.polarity(&key, class) {
                score += p.score();
                continue;
            }
        }
    }
    // multi-word entries (surface form, space-joined, any adjacent n-gram)
    let max_n = lexicon.max_entry_words().min(end - start);
    for n in 2..=max_n {
        for i in start..=(end - n) {
            let gram = (i..i + n)
                .map(|j| sentence.tokens[j].lower())
                .collect::<Vec<_>>()
                .join(" ");
            for class in PosClass::ALL {
                if let Some(p) = lexicon.polarity(&gram, *class) {
                    score += p.score();
                    break;
                }
            }
        }
    }
    Polarity::from_score(score).reversed_if(negated)
}

/// Polarity carried by the adverbs of a verb-group token range (the MP
/// source: "performs beautifully").
pub fn manner_polarity(
    sentence: &AnalyzedSentence,
    range: (usize, usize),
    lexicon: &SentimentLexicon,
) -> Polarity {
    let (start, end) = range;
    let end = end.min(sentence.tokens.len());
    let mut score = 0i32;
    for i in start..end {
        if sentence.tags[i].is_adverb() {
            let lower = sentence.tokens[i].lower();
            if is_negation_word(&lower) {
                continue; // clause-level negation is handled separately
            }
            if let Some(p) = lexicon.polarity(&lower, PosClass::Adverb) {
                score += p.score();
            }
        }
    }
    Polarity::from_score(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_lexicon::SentimentLexicon;
    use wf_nlp::Pipeline;

    fn polarity_of(text: &str, phrase: &str) -> Polarity {
        let p = Pipeline::new();
        let s = p.analyze_sentence(text);
        // locate the token sub-range matching `phrase`
        let words: Vec<String> = phrase.split(' ').map(|w| w.to_lowercase()).collect();
        let n = words.len();
        for i in 0..=s.tokens.len().saturating_sub(n) {
            if (0..n).all(|j| s.tokens[i + j].lower() == words[j]) {
                return phrase_polarity(&s, (i, i + n), SentimentLexicon::default_lexicon());
            }
        }
        panic!("phrase {phrase:?} not found in {text:?}");
    }

    #[test]
    fn positive_adjective_noun() {
        assert_eq!(
            polarity_of(
                "This camera takes excellent pictures.",
                "excellent pictures"
            ),
            Polarity::Positive
        );
    }

    #[test]
    fn negative_adjective() {
        assert_eq!(
            polarity_of("The company offers mediocre services.", "mediocre services"),
            Polarity::Negative
        );
    }

    #[test]
    fn neutral_phrase() {
        assert_eq!(
            polarity_of("The camera has a memory card.", "a memory card"),
            Polarity::Neutral
        );
    }

    #[test]
    fn negation_reverses() {
        assert_eq!(
            polarity_of("It is a not so great camera.", "a not so great camera"),
            Polarity::Negative
        );
        assert_eq!(
            polarity_of("There were no problems at all.", "no problems"),
            Polarity::Positive
        );
    }

    #[test]
    fn double_negation_restores() {
        assert_eq!(
            polarity_of("It is not without flaws.", "not without flaws"),
            Polarity::Negative
        );
    }

    #[test]
    fn mixed_terms_sum() {
        // one positive + one negative = neutral
        assert_eq!(
            polarity_of(
                "It has excellent pictures and terrible battery issues.",
                "excellent pictures and terrible battery"
            ),
            Polarity::Neutral
        );
    }

    #[test]
    fn negative_noun_counts() {
        assert_eq!(
            polarity_of("There is a lack of memory.", "a lack"),
            Polarity::Negative
        );
    }

    #[test]
    fn multiword_lexicon_entry() {
        assert_eq!(
            polarity_of(
                "The company offers high quality products.",
                "high quality products"
            ),
            Polarity::Positive
        );
    }

    #[test]
    fn manner_adverbs() {
        let p = Pipeline::new();
        let s = p.analyze_sentence("The lens performs beautifully.");
        let vp = s
            .chunks
            .iter()
            .find(|c| c.kind == wf_nlp::ChunkKind::VP)
            .unwrap();
        assert_eq!(
            manner_polarity(&s, (vp.start, vp.end), SentimentLexicon::default_lexicon()),
            Polarity::Positive
        );
    }

    #[test]
    fn empty_range_is_neutral() {
        let p = Pipeline::new();
        let s = p.analyze_sentence("Fine.");
        assert_eq!(
            phrase_polarity(&s, (1, 1), SentimentLexicon::default_lexicon()),
            Polarity::Neutral
        );
        assert_eq!(
            phrase_polarity(&s, (5, 9), SentimentLexicon::default_lexicon()),
            Polarity::Neutral
        );
    }

    #[test]
    fn verb_polarity_via_lemma() {
        assert_eq!(
            polarity_of("The screen impressed everyone.", "impressed everyone"),
            Polarity::Positive
        );
    }
}

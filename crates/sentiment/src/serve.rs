//! The sentiment index as a query-time serving backend.
//!
//! Bridges the precomputed [`ShardedSentimentIndex`] into
//! `wf_platform::serving`: a [`SentimentServingBackend`] answers the two
//! product queries —
//!
//! - `sentiment of <subject>` → the subject's polarity tallies;
//! - `top <k> <+|-|0>` → the k subjects with the most mentions of that
//!   polarity;
//!
//! as canonical JSON bodies (pure functions of the index content, so a
//! serving-cache hit is byte-identical to recomputation). Simulated cost
//! is derived from postings actually scanned, so bigger subjects cost
//! more — exactly the shape a latency SLO wants to watch.
//!
//! Each index shard carries a [`NodeHealth`]; both query forms fan out
//! over every shard (a subject's postings may live anywhere), so one
//! `Down` shard makes uncached queries fail with
//! [`Error::Unavailable`] while the serving tier's LRU cache keeps
//! answering popular queries — the node-loss chaos scenario in
//! `tests/serving.rs`.

use crate::sindex::ShardedSentimentIndex;
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;
use wf_platform::{NodeHealth, ServedAnswer, ServingBackend, TraceSpan};
use wf_types::{Error, Polarity, Result};

/// Simulated cost charged per degraded shard consulted by a query.
pub const DEGRADED_SHARD_PENALTY_MS: u64 = 25;

/// A parsed serving request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeRequest {
    /// `sentiment of <subject>`
    Subject(String),
    /// `top <k> <+|-|0>`
    TopK(usize, Polarity),
}

impl ServeRequest {
    /// Parses the request grammar; rejects anything else with
    /// [`Error::Query`].
    pub fn parse(request: &str) -> Result<ServeRequest> {
        let request = request.trim();
        if let Some(subject) = request.strip_prefix("sentiment of ") {
            let subject = subject.trim().to_lowercase();
            if subject.is_empty() {
                return Err(Error::Query("empty subject in sentiment query".into()));
            }
            return Ok(ServeRequest::Subject(subject));
        }
        let tokens: Vec<&str> = request.split_whitespace().collect();
        if let ["top", k, polarity] = tokens.as_slice() {
            let k: usize = k
                .parse()
                .map_err(|_| Error::Query(format!("bad top-k count {k:?}")))?;
            if k == 0 {
                return Err(Error::Query("top-k count must be positive".into()));
            }
            let polarity = Polarity::parse(polarity)
                .ok_or_else(|| Error::Query(format!("bad polarity {polarity:?} (use + - 0)")))?;
            return Ok(ServeRequest::TopK(k, polarity));
        }
        Err(Error::Query(format!(
            "unrecognized request {request:?} (use 'sentiment of X' or 'top K +')"
        )))
    }
}

/// The serving tier's view of the sentiment index plus per-shard health.
pub struct SentimentServingBackend {
    index: ShardedSentimentIndex,
    health: Mutex<Vec<NodeHealth>>,
}

impl SentimentServingBackend {
    pub fn new(index: ShardedSentimentIndex) -> Self {
        let shards = index.shard_count();
        SentimentServingBackend {
            index,
            health: Mutex::new(vec![NodeHealth::Up; shards]),
        }
    }

    pub fn index(&self) -> &ShardedSentimentIndex {
        &self.index
    }

    /// Marks one index shard up/degraded/down — callable mid-run from a
    /// serve-loop trigger (node loss, slow shard).
    pub fn set_shard_health(&self, shard: usize, health: NodeHealth) {
        let mut guard = self.health.lock().expect("health lock");
        if shard < guard.len() {
            guard[shard] = health;
        }
    }

    /// (down, degraded) shard counts at this instant.
    fn shard_weather(&self) -> (usize, usize) {
        let guard = self.health.lock().expect("health lock");
        let down = guard.iter().filter(|h| **h == NodeHealth::Down).count();
        let degraded = guard.iter().filter(|h| **h == NodeHealth::Degraded).count();
        (down, degraded)
    }

    fn subject_answer(&self, subject: &str) -> Result<(Value, u64)> {
        let postings = self.index.merged_postings(subject);
        if postings.is_empty() {
            return Err(Error::NotFound(format!(
                "subject {subject:?} not in sentiment index"
            )));
        }
        let summary = self.index.summary(subject).expect("postings imply summary");
        let mut o = BTreeMap::new();
        o.insert("negative".to_string(), Value::from(summary.negative));
        o.insert("net".to_string(), Value::from(summary.net()));
        o.insert("neutral".to_string(), Value::from(summary.neutral));
        o.insert("positive".to_string(), Value::from(summary.positive));
        o.insert("postings".to_string(), Value::from(postings.len() as u64));
        o.insert("subject".to_string(), Value::from(subject));
        Ok((Value::Object(o), postings.len() as u64))
    }

    /// Shared query resolution: `(body, postings scanned, degraded
    /// shards)` — the error paths (`Query`/`Unavailable`/`NotFound`) are
    /// identical for the traced and untraced execute.
    fn resolve(&self, request: &str) -> Result<(Value, u64, usize)> {
        let parsed = ServeRequest::parse(request)?;
        let (down, degraded) = self.shard_weather();
        // both query forms fan out over every shard
        if down > 0 {
            return Err(Error::Unavailable(format!(
                "{down} sentiment index shard(s) down"
            )));
        }
        let (body, scanned) = match parsed {
            ServeRequest::Subject(subject) => self.subject_answer(&subject)?,
            ServeRequest::TopK(k, polarity) => self.top_k_answer(k, polarity),
        };
        Ok((body, scanned, degraded))
    }

    /// Postings each shard contributes to `request`, in shard order —
    /// what the fanout stage span reports.
    fn per_shard_scanned(&self, request: &str) -> Vec<usize> {
        match ServeRequest::parse(request) {
            Ok(ServeRequest::Subject(subject)) => (0..self.index.shard_count())
                .map(|i| self.index.shard(i).postings(&subject).len())
                .collect(),
            Ok(ServeRequest::TopK(..)) => (0..self.index.shard_count())
                .map(|i| self.index.shard(i).posting_count())
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    fn top_k_answer(&self, k: usize, polarity: Polarity) -> (Value, u64) {
        let ranked = self.index.top_k(k, polarity);
        let top: Vec<Value> = ranked
            .iter()
            .map(|s| {
                let mut o = BTreeMap::new();
                o.insert("count".to_string(), Value::from(s.count(polarity)));
                o.insert("net".to_string(), Value::from(s.net()));
                o.insert("subject".to_string(), Value::from(s.subject.as_str()));
                Value::Object(o)
            })
            .collect();
        let mut o = BTreeMap::new();
        o.insert("polarity".to_string(), Value::from(polarity.to_string()));
        o.insert("top".to_string(), Value::Array(top));
        // a tally scan touches every posting on every shard
        (Value::Object(o), self.index.posting_count() as u64)
    }
}

impl ServingBackend for SentimentServingBackend {
    fn execute(&self, request: &str) -> Result<ServedAnswer> {
        let (body, scanned, degraded) = self.resolve(request)?;
        let cost_sim_ms = scanned + degraded as u64 * DEGRADED_SHARD_PENALTY_MS;
        Ok(ServedAnswer {
            body: serde_json::to_string(&body).expect("Value renders infallibly"),
            cost_sim_ms,
        })
    }

    /// Same answer and cost as [`ServingBackend::execute`], with the cost
    /// attributed to stage spans: `shard_fanout` carries the per-shard
    /// postings scan (plus the degraded-shard penalty), `postings_merge`
    /// the k-way combine (free in the cost model; recorded for count).
    fn execute_traced(&self, request: &str, span: &mut TraceSpan) -> Result<ServedAnswer> {
        let (body, scanned, degraded) = self.resolve(request)?;
        let cost_sim_ms = scanned + degraded as u64 * DEGRADED_SHARD_PENALTY_MS;
        let per_shard = self.per_shard_scanned(request);
        let mut fanout = span.child("shard_fanout");
        fanout.attr("shards", self.index.shard_count().to_string());
        fanout.attr("scanned", scanned.to_string());
        fanout.attr(
            "per_shard",
            per_shard
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
        );
        if degraded > 0 {
            fanout.attr("degraded", degraded.to_string());
        }
        fanout.advance(cost_sim_ms);
        fanout.finish();
        span.advance(cost_sim_ms);
        let mut merge = span.child("postings_merge");
        merge.attr("postings", scanned.to_string());
        merge.finish();
        Ok(ServedAnswer {
            body: serde_json::to_string(&body).expect("Value renders infallibly"),
            cost_sim_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_platform::{Annotation, DataStore, Entity, SourceKind};
    use wf_types::Span;

    fn backend() -> SentimentServingBackend {
        let store = DataStore::new(2).unwrap();
        let doc = |marks: &[(&str, Polarity)]| {
            let text = "0123456789".repeat(marks.len());
            let mut e = Entity::new("uri", SourceKind::Web, &text);
            for (i, (subject, polarity)) in marks.iter().enumerate() {
                e.annotate(
                    Annotation::new("sentiment", Span::new(i * 10, i * 10 + 10))
                        .with_attr("subject", subject.to_string())
                        .with_attr("polarity", polarity.to_string()),
                );
            }
            store.insert(e);
        };
        doc(&[("canon", Polarity::Positive), ("nikon", Polarity::Negative)]);
        doc(&[("canon", Polarity::Positive)]);
        doc(&[("canon", Polarity::Negative), ("nikon", Polarity::Neutral)]);
        SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(&store))
    }

    #[test]
    fn parses_the_request_grammar() {
        assert_eq!(
            ServeRequest::parse("sentiment of Canon").unwrap(),
            ServeRequest::Subject("canon".into())
        );
        assert_eq!(
            ServeRequest::parse("top 3 +").unwrap(),
            ServeRequest::TopK(3, Polarity::Positive)
        );
        assert!(matches!(
            ServeRequest::parse("sentiment of "),
            Err(Error::Query(_))
        ));
        assert!(matches!(
            ServeRequest::parse("top 0 +"),
            Err(Error::Query(_))
        ));
        assert!(matches!(
            ServeRequest::parse("top x +"),
            Err(Error::Query(_))
        ));
        assert!(matches!(
            ServeRequest::parse("top 3 ?"),
            Err(Error::Query(_))
        ));
        assert!(matches!(
            ServeRequest::parse("frobnicate"),
            Err(Error::Query(_))
        ));
    }

    #[test]
    fn subject_answer_is_canonical_json() {
        let backend = backend();
        let a = backend.execute("sentiment of canon").unwrap();
        let b = backend.execute("sentiment of Canon").unwrap();
        assert_eq!(a.body, b.body, "case-insensitive and canonical");
        assert!(a.body.contains("\"positive\":2"), "{}", a.body);
        assert!(a.body.contains("\"negative\":1"), "{}", a.body);
        assert!(a.body.contains("\"net\":1"), "{}", a.body);
        assert_eq!(a.cost_sim_ms, 3, "cost follows postings scanned");
    }

    #[test]
    fn unknown_subject_is_not_found() {
        let err = backend().execute("sentiment of pentax").unwrap_err();
        assert!(matches!(err, Error::NotFound(_)), "{err}");
    }

    #[test]
    fn top_k_answer_ranks_subjects() {
        let a = backend().execute("top 2 +").unwrap();
        assert!(a.body.contains("\"polarity\":\"+\""), "{}", a.body);
        let canon = a.body.find("canon").unwrap();
        let nikon = a.body.find("nikon").unwrap();
        assert!(canon < nikon, "canon leads on positives: {}", a.body);
    }

    #[test]
    fn down_shard_makes_queries_unavailable() {
        let backend = backend();
        backend.set_shard_health(1, NodeHealth::Down);
        let err = backend.execute("sentiment of canon").unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "{err}");
        assert!(err.is_transient());
        backend.set_shard_health(1, NodeHealth::Up);
        assert!(backend.execute("sentiment of canon").is_ok());
    }

    #[test]
    fn degraded_shard_slows_queries() {
        let backend = backend();
        let healthy = backend.execute("sentiment of canon").unwrap();
        backend.set_shard_health(0, NodeHealth::Degraded);
        let degraded = backend.execute("sentiment of canon").unwrap();
        assert_eq!(
            degraded.body, healthy.body,
            "degradation never changes bytes"
        );
        assert_eq!(
            degraded.cost_sim_ms,
            healthy.cost_sim_ms + DEGRADED_SHARD_PENALTY_MS
        );
    }
}

//! The precomputed, sharded sentiment index behind the serving tier.
//!
//! Mode B's offline half (Figure 3): the miners annotate every document
//! with per-(subject, sentence) `sentiment` annotations; this module
//! folds those annotations into polarity **postings** sharded the same
//! way the [`wf_platform::DataStore`] shards documents, so each cluster
//! node holds the sentiment postings for exactly the documents it owns.
//! Query time then never touches the NLP stack: "sentiment of X" is a
//! fan-out over per-shard `BTreeMap` lookups plus a deterministic merge,
//! and "top-k by polarity" is a tally scan — the paper's "real time
//! response" requirement, made concrete.
//!
//! The shard-merge invariant (see `tests/serving.rs`): building the index
//! over an N-shard store and merging per-shard postings yields exactly
//! the postings of a single-shard build of the same corpus.

use std::collections::BTreeMap;
use wf_platform::{DataStore, Entity};
use wf_types::{DocId, Polarity, Span};

/// One precomputed (subject, sentence) polarity observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentimentPosting {
    pub doc: DocId,
    /// Index shard (= cluster node) owning the document.
    pub shard: u32,
    /// Canonical lowercased subject, as the miners annotate it.
    pub subject: String,
    pub polarity: Polarity,
    /// The sentiment-bearing sentence, located in the document…
    pub sentence_span: Span,
    /// …and materialized so serving never loads the entity.
    pub sentence: String,
}

impl SentimentPosting {
    /// Deterministic postings order: document, then position in it.
    fn sort_key(&self) -> (u64, usize, usize, i32) {
        (
            self.doc.0,
            self.sentence_span.start,
            self.sentence_span.end,
            self.polarity.score(),
        )
    }
}

/// Polarity tallies for one subject across every shard.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubjectSummary {
    pub subject: String,
    pub positive: u64,
    pub negative: u64,
    pub neutral: u64,
}

impl SubjectSummary {
    pub fn total(&self) -> u64 {
        self.positive + self.negative + self.neutral
    }

    /// Net polarity: positive minus negative mentions.
    pub fn net(&self) -> i64 {
        self.positive as i64 - self.negative as i64
    }

    /// The tally for one polarity class.
    pub fn count(&self, polarity: Polarity) -> u64 {
        match polarity {
            Polarity::Positive => self.positive,
            Polarity::Negative => self.negative,
            Polarity::Neutral => self.neutral,
        }
    }
}

/// One shard's subject → postings map.
#[derive(Debug, Clone, Default)]
pub struct SentimentIndexShard {
    postings: BTreeMap<String, Vec<SentimentPosting>>,
    posting_count: usize,
}

impl SentimentIndexShard {
    /// Postings for one subject, sorted by (doc, span).
    pub fn postings(&self, subject: &str) -> &[SentimentPosting] {
        self.postings.get(subject).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn subjects(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(String::as_str)
    }

    pub fn posting_count(&self) -> usize {
        self.posting_count
    }

    /// Inserts keeping each subject's postings sorted, so incremental
    /// adds and bulk builds produce identical layouts.
    fn add(&mut self, posting: SentimentPosting) {
        let list = self.postings.entry(posting.subject.clone()).or_default();
        let at = list
            .binary_search_by_key(&posting.sort_key(), SentimentPosting::sort_key)
            .unwrap_or_else(|i| i);
        list.insert(at, posting);
        self.posting_count += 1;
    }
}

/// The cluster-wide sentiment index: one [`SentimentIndexShard`] per
/// store shard, co-located with `platform::index` on each node.
#[derive(Debug, Clone)]
pub struct ShardedSentimentIndex {
    shards: Vec<SentimentIndexShard>,
}

impl ShardedSentimentIndex {
    /// An empty index with `shard_count` shards (≥ 1 enforced by
    /// clamping).
    pub fn new(shard_count: usize) -> Self {
        ShardedSentimentIndex {
            shards: vec![SentimentIndexShard::default(); shard_count.max(1)],
        }
    }

    /// Builds the index from every mined entity in the store, placing
    /// postings on the shard that owns the document (`store.node_of`).
    pub fn build_from_store(store: &DataStore) -> Self {
        let mut index = ShardedSentimentIndex::new(store.shard_count());
        store.for_each(|entity| {
            let shard = store.node_of(entity.id).0;
            index.add_entity(entity, shard);
        });
        index
    }

    /// Folds one entity's `sentiment` annotations into `shard` — the
    /// incremental-ingest path: call it as freshly mined documents land.
    pub fn add_entity(&mut self, entity: &Entity, shard: u32) {
        let slot = (shard as usize).min(self.shards.len() - 1);
        for ann in entity.annotations_of("sentiment") {
            let (Some(subject), Some(polarity)) = (ann.attr("subject"), ann.attr("polarity"))
            else {
                continue;
            };
            let Some(polarity) = Polarity::parse(polarity) else {
                continue;
            };
            self.shards[slot].add(SentimentPosting {
                doc: entity.id,
                shard,
                subject: subject.to_lowercase(),
                polarity,
                sentence_span: ann.span,
                sentence: ann.span.slice(&entity.text).trim().to_string(),
            });
        }
    }

    /// Drops one shard's postings (its node crashed), returning how
    /// many were lost. Out-of-range shards clamp like `add_entity`.
    pub fn clear_shard(&mut self, shard: u32) -> usize {
        let slot = (shard as usize).min(self.shards.len() - 1);
        let dropped = self.shards[slot].posting_count;
        self.shards[slot] = SentimentIndexShard::default();
        dropped
    }

    /// Rebuilds one shard from recovered entities (clear + re-add): the
    /// incremental half of crash recovery, fed by the WAL replay via
    /// `Cluster::restart_node_with`. Sorted insertion makes the result
    /// identical to a bulk build over the same corpus. Returns the
    /// shard's posting count after the rebuild.
    pub fn rebuild_shard(&mut self, shard: u32, entities: &[Entity]) -> usize {
        self.clear_shard(shard);
        for entity in entities {
            self.add_entity(entity, shard);
        }
        let slot = (shard as usize).min(self.shards.len() - 1);
        self.shards[slot].posting_count
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, i: usize) -> &SentimentIndexShard {
        &self.shards[i]
    }

    /// Total postings across every shard.
    pub fn posting_count(&self) -> usize {
        self.shards
            .iter()
            .map(SentimentIndexShard::posting_count)
            .sum()
    }

    /// All indexed subjects, deduplicated and sorted.
    pub fn subjects(&self) -> Vec<String> {
        let mut all: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.subjects().map(str::to_string))
            .collect();
        all.sort();
        all.dedup();
        all
    }

    /// One subject's postings merged across shards in deterministic
    /// (doc, span) order — the serving tier's fan-out + merge.
    pub fn merged_postings(&self, subject: &str) -> Vec<SentimentPosting> {
        let mut merged: Vec<SentimentPosting> = self
            .shards
            .iter()
            .flat_map(|s| s.postings(subject).iter().cloned())
            .collect();
        merged.sort_by_key(SentimentPosting::sort_key);
        merged
    }

    /// Polarity tallies for one subject, or `None` when it was never
    /// mined.
    pub fn summary(&self, subject: &str) -> Option<SubjectSummary> {
        let mut summary = SubjectSummary {
            subject: subject.to_string(),
            ..SubjectSummary::default()
        };
        let mut seen = false;
        for shard in &self.shards {
            for posting in shard.postings(subject) {
                seen = true;
                match posting.polarity {
                    Polarity::Positive => summary.positive += 1,
                    Polarity::Negative => summary.negative += 1,
                    Polarity::Neutral => summary.neutral += 1,
                }
            }
        }
        seen.then_some(summary)
    }

    /// The `k` subjects with the most `polarity` mentions (count
    /// descending, subject ascending on ties) — the Sifaka-style
    /// analytics surface.
    pub fn top_k(&self, k: usize, polarity: Polarity) -> Vec<SubjectSummary> {
        let mut tallies: BTreeMap<&str, SubjectSummary> = BTreeMap::new();
        for shard in &self.shards {
            for (subject, postings) in &shard.postings {
                let entry = tallies.entry(subject).or_insert_with(|| SubjectSummary {
                    subject: subject.clone(),
                    ..SubjectSummary::default()
                });
                for posting in postings {
                    match posting.polarity {
                        Polarity::Positive => entry.positive += 1,
                        Polarity::Negative => entry.negative += 1,
                        Polarity::Neutral => entry.neutral += 1,
                    }
                }
            }
        }
        let mut ranked: Vec<SubjectSummary> = tallies.into_values().collect();
        ranked.sort_by(|a, b| {
            b.count(polarity)
                .cmp(&a.count(polarity))
                .then_with(|| a.subject.cmp(&b.subject))
        });
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_platform::{Annotation, SourceKind};

    /// An entity with one sentiment annotation per (subject, polarity)
    /// pair, each covering a distinct slice of the text.
    fn entity(uri: &str, marks: &[(&str, Polarity)]) -> Entity {
        let text = "0123456789".repeat(marks.len().max(1));
        let mut e = Entity::new(uri, SourceKind::Web, &text);
        for (i, (subject, polarity)) in marks.iter().enumerate() {
            e.annotate(
                Annotation::new("sentiment", Span::new(i * 10, i * 10 + 10))
                    .with_attr("subject", subject.to_string())
                    .with_attr("polarity", polarity.to_string()),
            );
        }
        e
    }

    fn seeded_store(shards: usize) -> DataStore {
        let store = DataStore::new(shards).unwrap();
        store.insert(entity(
            "a",
            &[("canon", Polarity::Positive), ("nikon", Polarity::Negative)],
        ));
        store.insert(entity("b", &[("canon", Polarity::Positive)]));
        store.insert(entity("c", &[("canon", Polarity::Negative)]));
        store.insert(entity("d", &[("nikon", Polarity::Neutral)]));
        store
    }

    #[test]
    fn build_shards_by_document_owner() {
        let store = seeded_store(2);
        let index = ShardedSentimentIndex::build_from_store(&store);
        assert_eq!(index.shard_count(), 2);
        assert_eq!(index.posting_count(), 5);
        for shard_id in 0..2 {
            for posting in index.shard(shard_id).postings("canon") {
                assert_eq!(store.node_of(posting.doc).0 as usize, shard_id);
            }
        }
    }

    #[test]
    fn summary_tallies_across_shards() {
        let index = ShardedSentimentIndex::build_from_store(&seeded_store(3));
        let canon = index.summary("canon").unwrap();
        assert_eq!((canon.positive, canon.negative, canon.neutral), (2, 1, 0));
        assert_eq!(canon.net(), 1);
        let nikon = index.summary("nikon").unwrap();
        assert_eq!((nikon.positive, nikon.negative, nikon.neutral), (0, 1, 1));
        assert!(index.summary("pentax").is_none());
    }

    #[test]
    fn merged_postings_match_single_shard_build() {
        let sharded = ShardedSentimentIndex::build_from_store(&seeded_store(3));
        let single = ShardedSentimentIndex::build_from_store(&seeded_store(1));
        for subject in sharded.subjects() {
            let merged: Vec<_> = sharded
                .merged_postings(&subject)
                .into_iter()
                .map(|p| (p.doc, p.sentence_span, p.polarity))
                .collect();
            let flat: Vec<_> = single
                .merged_postings(&subject)
                .into_iter()
                .map(|p| (p.doc, p.sentence_span, p.polarity))
                .collect();
            assert_eq!(merged, flat, "subject {subject}");
        }
    }

    #[test]
    fn top_k_ranks_by_polarity_count() {
        let index = ShardedSentimentIndex::build_from_store(&seeded_store(2));
        let top = index.top_k(2, Polarity::Positive);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].subject, "canon");
        assert_eq!(top[0].positive, 2);
        let top_neg = index.top_k(1, Polarity::Negative);
        // canon and nikon tie at 1 negative; the subject tie-break wins
        assert_eq!(top_neg[0].subject, "canon");
    }

    #[test]
    fn rebuild_shard_matches_bulk_after_clear() {
        use wf_types::NodeId;
        let store = seeded_store(2);
        let bulk = ShardedSentimentIndex::build_from_store(&store);
        let mut index = ShardedSentimentIndex::build_from_store(&store);
        let dropped = index.clear_shard(0);
        assert!(dropped > 0, "shard 0 had postings to lose");
        assert_eq!(index.posting_count(), bulk.posting_count() - dropped);
        let recovered: Vec<Entity> = store
            .shard_ids(NodeId(0))
            .into_iter()
            .map(|id| store.get(id).unwrap())
            .collect();
        let rebuilt = index.rebuild_shard(0, &recovered);
        assert_eq!(rebuilt, dropped, "rebuild restores every posting");
        for subject in bulk.subjects() {
            assert_eq!(
                bulk.merged_postings(&subject),
                index.merged_postings(&subject),
                "subject {subject}"
            );
        }
    }

    #[test]
    fn incremental_add_matches_bulk_build() {
        let store = seeded_store(2);
        let bulk = ShardedSentimentIndex::build_from_store(&store);
        let mut incremental = ShardedSentimentIndex::new(store.shard_count());
        // feed documents in reverse to prove order-insensitivity
        let mut ids = store.ids();
        ids.reverse();
        for id in ids {
            let entity = store.get(id).unwrap();
            incremental.add_entity(&entity, store.node_of(id).0);
        }
        for subject in bulk.subjects() {
            assert_eq!(
                bulk.merged_postings(&subject),
                incremental.merged_postings(&subject)
            );
        }
    }
}

//! Sentiment context formation.
//!
//! "A small sentiment context for each subject term spot is constructed and
//! the sentiment miner runs on the context. A sentiment context generally
//! consists of the full sentence that contains a subject spot and possibly
//! some surrounding text of the sentence determined by the sentiment
//! context window formation rule. The subject spot is marked by an XML tag
//! and passed to the sentiment analyzer."

use wf_types::Span;

/// How much surrounding text joins the spot's sentence in the context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContextWindowRule {
    /// Sentences before the spot's sentence to include.
    pub sentences_before: usize,
    /// Sentences after the spot's sentence to include.
    pub sentences_after: usize,
}

/// A formed sentiment context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentimentContext {
    /// Byte span of the context in the source document.
    pub span: Span,
    /// Byte span of the subject spot.
    pub spot: Span,
    /// The context text with the spot marked by `<subject>` XML tags.
    pub marked_text: String,
}

/// Forms the sentiment context for one spot given the document text, the
/// spans of all sentences (ascending), and the spot span.
/// Returns `None` when the spot is not inside any sentence.
pub fn form_context(
    text: &str,
    sentence_spans: &[Span],
    spot: Span,
    rule: ContextWindowRule,
) -> Option<SentimentContext> {
    let idx = sentence_spans
        .iter()
        .position(|s| s.contains(spot) || s.contains_offset(spot.start))?;
    let first = idx.saturating_sub(rule.sentences_before);
    let last = (idx + rule.sentences_after).min(sentence_spans.len() - 1);
    let span = Span::new(sentence_spans[first].start, sentence_spans[last].end);
    let mut marked_text = String::with_capacity(span.len() + 20);
    marked_text.push_str(&text[span.start..spot.start]);
    marked_text.push_str("<subject>");
    marked_text.push_str(spot.slice(text));
    marked_text.push_str("</subject>");
    marked_text.push_str(&text[spot.end..span.end]);
    Some(SentimentContext {
        span,
        spot,
        marked_text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "First sentence here. The NR70 takes great pictures. Last one.";

    fn sentences() -> Vec<Span> {
        vec![Span::new(0, 20), Span::new(21, 51), Span::new(52, 61)]
    }

    fn nr70_spot() -> Span {
        let start = TEXT.find("NR70").unwrap();
        Span::new(start, start + 4)
    }

    #[test]
    fn default_rule_is_single_sentence() {
        let ctx = form_context(
            TEXT,
            &sentences(),
            nr70_spot(),
            ContextWindowRule::default(),
        )
        .unwrap();
        assert_eq!(ctx.span, Span::new(21, 51));
        assert_eq!(
            ctx.marked_text,
            "The <subject>NR70</subject> takes great pictures."
        );
    }

    #[test]
    fn window_extends_to_neighbors() {
        let rule = ContextWindowRule {
            sentences_before: 1,
            sentences_after: 1,
        };
        let ctx = form_context(TEXT, &sentences(), nr70_spot(), rule).unwrap();
        assert_eq!(ctx.span, Span::new(0, 61));
        assert!(ctx.marked_text.starts_with("First sentence"));
        assert!(ctx.marked_text.ends_with("Last one."));
    }

    #[test]
    fn window_clamps_at_document_edges() {
        let rule = ContextWindowRule {
            sentences_before: 10,
            sentences_after: 10,
        };
        let ctx = form_context(TEXT, &sentences(), nr70_spot(), rule).unwrap();
        assert_eq!(ctx.span, Span::new(0, 61));
    }

    #[test]
    fn spot_outside_sentences_is_none() {
        let spans = vec![Span::new(0, 5)];
        assert!(form_context(
            TEXT,
            &spans,
            Span::new(30, 34),
            ContextWindowRule::default()
        )
        .is_none());
    }
}

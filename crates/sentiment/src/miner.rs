//! The sentiment miner facade: subject spotting + analysis + assignment.
//!
//! Mode A of the paper (Figure 2): a predefined [`SubjectList`] is spotted
//! in each document, a sentiment context is formed per spot, and the
//! analyzer's assignments are associated to the spots they cover.

use crate::analyzer::{AnalyzerConfig, Evidence, SentimentAnalyzer, SentimentAssignment};
use crate::record::{EvidenceKind, SubjectSentiment};
use wf_nlp::{AnalyzedSentence, DocAnnotations, DocScratch, NamedEntity, Pipeline};
use wf_spotter::{Spot, Spotter, SubjectList};
use wf_types::{Polarity, Span};

/// The sentiment miner.
///
/// ```
/// use wf_sentiment::{SentimentMiner, SubjectList};
/// use wf_types::Polarity;
///
/// let miner = SentimentMiner::with_default_resources();
/// let subjects = SubjectList::builder()
///     .subject("camera", ["camera", "cameras"])
///     .build();
/// let records = miner.analyze_text("This camera takes excellent pictures.", &subjects);
/// assert_eq!(records[0].polarity, Polarity::Positive);
/// ```
pub struct SentimentMiner {
    pipeline: Pipeline,
    analyzer: SentimentAnalyzer,
}

impl Default for SentimentMiner {
    fn default() -> Self {
        Self::with_default_resources()
    }
}

impl SentimentMiner {
    /// Builds a miner over the embedded sentiment lexicon and pattern
    /// database.
    pub fn with_default_resources() -> Self {
        SentimentMiner {
            pipeline: Pipeline::new(),
            analyzer: SentimentAnalyzer::new(),
        }
    }

    /// Builds a miner with selected relationship rules disabled (used by
    /// the ablation experiments).
    pub fn with_config(config: AnalyzerConfig) -> Self {
        SentimentMiner {
            pipeline: Pipeline::new(),
            analyzer: SentimentAnalyzer::with_config(config),
        }
    }

    /// The underlying NLP pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The underlying analyzer.
    pub fn analyzer(&self) -> &SentimentAnalyzer {
        &self.analyzer
    }

    /// Mode A: analyzes `text`, returning one record per (spot,
    /// assignment) association plus a Neutral record for every spot with
    /// no sentiment. Subjects come from the predefined list.
    pub fn analyze_text(&self, text: &str, subjects: &SubjectList) -> Vec<SubjectSentiment> {
        let spotter = Spotter::new(subjects);
        self.analyze_with_spots(text, subjects, &spotter.spot(text))
    }

    /// Mode A with a reusable compiled spotter (bulk processing).
    pub fn analyze_with_spotter(
        &self,
        text: &str,
        subjects: &SubjectList,
        spotter: &Spotter,
    ) -> Vec<SubjectSentiment> {
        self.analyze_with_spots(text, subjects, &spotter.spot(text))
    }

    fn analyze_with_spots(
        &self,
        text: &str,
        subjects: &SubjectList,
        spots: &[Spot],
    ) -> Vec<SubjectSentiment> {
        let sentences = self.pipeline.analyze(text);
        let mut out = Vec::new();
        for sentence in &sentences {
            let in_sentence: Vec<&Spot> = spots
                .iter()
                .filter(|s| sentence.span.contains_offset(s.span.start))
                .collect();
            if in_sentence.is_empty() {
                continue;
            }
            let assignments = self.analyzer.analyze(sentence);
            for spot in in_sentence {
                let subject = subjects
                    .get(spot.synset)
                    .map(|s| s.canonical.clone())
                    .unwrap_or_else(|| spot.variant.clone());
                out.extend(associate_spot(
                    sentence,
                    &assignments,
                    spot.span,
                    subject,
                    Some(spot.synset),
                ));
            }
        }
        out
    }

    /// Query-time mode (mode B building block): subjects are the named
    /// entities the NE spotter finds in the text itself. The document is
    /// tokenized once; entity spotting and sentence analysis share the pass.
    pub fn analyze_named_entities(&self, text: &str) -> Vec<SubjectSentiment> {
        let mut scratch = DocScratch::new();
        let annotations = self.pipeline.analyze_doc(text, &mut scratch);
        self.records_from_annotations(&annotations)
    }

    /// Batch form of [`SentimentMiner::analyze_named_entities`]: one scratch
    /// buffer is reused across all documents, so steady-state per-token
    /// allocation amortizes away. Output is order-aligned with `texts` and
    /// identical to the per-document call.
    pub fn analyze_named_entities_batch<S: AsRef<str>>(
        &self,
        texts: &[S],
    ) -> Vec<Vec<SubjectSentiment>> {
        self.analyze_named_entities_batch_costed(texts).0
    }

    /// [`SentimentMiner::analyze_named_entities_batch`] plus the batch's
    /// per-stage NLP unit costs ([`wf_nlp::StageCosts`]), so traced miner
    /// runs can attribute the work to tokenize/pos/chunk/clause/ner spans.
    pub fn analyze_named_entities_batch_costed<S: AsRef<str>>(
        &self,
        texts: &[S],
    ) -> (Vec<Vec<SubjectSentiment>>, wf_nlp::StageCosts) {
        let mut scratch = DocScratch::new();
        let mut costs = wf_nlp::StageCosts::default();
        let records = texts
            .iter()
            .map(|t| {
                let annotations = self.pipeline.analyze_doc(t.as_ref(), &mut scratch);
                costs.absorb(&annotations);
                self.records_from_annotations(&annotations)
            })
            .collect();
        (records, costs)
    }

    /// Reference implementation of [`SentimentMiner::analyze_named_entities`]
    /// built on the frozen naive NLP path (`wf_nlp::naive`). Exists as the
    /// oracle for the differential-equivalence test harness; do not use in
    /// production paths.
    pub fn analyze_named_entities_reference(&self, text: &str) -> Vec<SubjectSentiment> {
        let entities = wf_nlp::naive::named_entities(text);
        let sentences = wf_nlp::naive::analyze(text);
        let mut out = Vec::new();
        for sentence in &sentences {
            out.extend(self.records_for_sentence(sentence, &entities));
        }
        out
    }

    /// Shared mode-B association step: pairs each sentence analysis with the
    /// named entities it contains.
    fn records_from_annotations(&self, annotations: &DocAnnotations) -> Vec<SubjectSentiment> {
        let mut out = Vec::new();
        for sentence in &annotations.sentences {
            out.extend(self.records_for_sentence(sentence, &annotations.entities));
        }
        out
    }

    fn records_for_sentence(
        &self,
        sentence: &AnalyzedSentence,
        entities: &[NamedEntity],
    ) -> Vec<SubjectSentiment> {
        let in_sentence: Vec<_> = entities
            .iter()
            .filter(|e| sentence.span.contains_offset(e.span.start))
            .collect();
        if in_sentence.is_empty() {
            return Vec::new();
        }
        let assignments = self.analyzer.analyze(sentence);
        let mut out = Vec::new();
        for entity in in_sentence {
            out.extend(associate_spot(
                sentence,
                &assignments,
                entity.span,
                entity.text.clone(),
                None,
            ));
        }
        out
    }

    /// Analyzes one isolated sentence against a subject list (evaluation
    /// entry point: the paper evaluates per sentence with a subject term).
    pub fn analyze_sentence_subject(
        &self,
        sentence_text: &str,
        subjects: &SubjectList,
    ) -> Vec<SubjectSentiment> {
        self.analyze_text(sentence_text, subjects)
    }
}

/// Associates a spot with the assignments covering it.
fn associate_spot(
    sentence: &AnalyzedSentence,
    assignments: &[SentimentAssignment],
    spot_span: Span,
    subject: String,
    synset: Option<wf_types::SynsetId>,
) -> Vec<SubjectSentiment> {
    // the spot's token indices (tokens overlapping the spot span)
    let spot_tokens: Vec<usize> = sentence
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.span.overlaps(spot_span))
        .map(|(i, _)| i)
        .collect();
    let mut records = Vec::new();
    for assignment in assignments {
        if assignment.polarity == Polarity::Neutral {
            continue;
        }
        if spot_tokens.iter().any(|&t| assignment.covers_token(t)) {
            records.push(SubjectSentiment {
                subject: subject.clone(),
                synset,
                polarity: assignment.polarity,
                sentence_span: sentence.span,
                spot_span,
                evidence: evidence_kind(&assignment.evidence),
                detail: evidence_detail(&assignment.evidence),
            });
        }
    }
    if records.is_empty() {
        records.push(SubjectSentiment {
            subject,
            synset,
            polarity: Polarity::Neutral,
            sentence_span: sentence.span,
            spot_span,
            evidence: EvidenceKind::None,
            detail: String::new(),
        });
    }
    records
}

fn evidence_kind(evidence: &Evidence) -> EvidenceKind {
    match evidence {
        Evidence::Pattern { .. } => EvidenceKind::Pattern,
        Evidence::Existential => EvidenceKind::Existential,
        Evidence::Contrast { .. } => EvidenceKind::Contrast,
        Evidence::Attributive => EvidenceKind::Attributive,
    }
}

fn evidence_detail(evidence: &Evidence) -> String {
    match evidence {
        Evidence::Pattern { predicate, target } => format!("pattern {predicate}→{target}"),
        Evidence::Existential => "existential".into(),
        Evidence::Contrast { preposition } => format!("contrast {preposition}"),
        Evidence::Attributive => "attributive".into(),
    }
}

/// Folds a record list into the dominant polarity per (sentence, subject)
/// mention — the unit the paper's evaluation scores.
pub fn mention_polarities(records: &[SubjectSentiment]) -> Vec<(String, Span, Polarity)> {
    use std::collections::BTreeMap;
    type MentionKey = (String, (usize, usize), (usize, usize));
    let mut groups: BTreeMap<MentionKey, Vec<&SubjectSentiment>> = BTreeMap::new();
    for r in records {
        groups
            .entry((
                r.subject.clone(),
                (r.sentence_span.start, r.sentence_span.end),
                (r.spot_span.start, r.spot_span.end),
            ))
            .or_default()
            .push(r);
    }
    groups
        .into_iter()
        .map(|((subject, sent, _spot), rs)| {
            (
                subject,
                Span::new(sent.0, sent.1),
                crate::record::dominant_polarity(&rs),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_spotter::SubjectList;

    fn subjects() -> SubjectList {
        SubjectList::builder()
            .subject("NR70", ["NR70", "NR70 series"])
            .subject("T series CLIEs", ["T series CLIEs", "T series"])
            .subject("Sony PDA", ["Sony PDA"])
            .subject("camera", ["camera", "cameras"])
            .build()
    }

    fn polarities(text: &str) -> Vec<(String, Polarity)> {
        let miner = SentimentMiner::with_default_resources();
        let records = miner.analyze_text(text, &subjects());
        mention_polarities(&records)
            .into_iter()
            .map(|(s, _, p)| (s, p))
            .collect()
    }

    #[test]
    fn paper_sample_sentence_2() {
        let got = polarities(
            "Unlike the more recent T series CLIEs, the NR70 does not require an \
             add-on adapter for MP3 playback, which is certainly a welcome change.",
        );
        assert!(
            got.contains(&("NR70".into(), Polarity::Positive)),
            "{got:?}"
        );
        assert!(
            got.contains(&("T series CLIEs".into(), Polarity::Negative)),
            "{got:?}"
        );
    }

    #[test]
    fn paper_sample_sentence_1() {
        let got = polarities(
            "As with every Sony PDA before it, the NR70 series is equipped with \
             Sony's own Memory Stick expansion.",
        );
        assert!(
            got.contains(&("NR70".into(), Polarity::Positive)),
            "{got:?}"
        );
        assert!(
            got.contains(&("Sony PDA".into(), Polarity::Positive)),
            "{got:?}"
        );
    }

    #[test]
    fn simple_positive_and_negative() {
        let got = polarities("This camera takes excellent pictures.");
        assert_eq!(got, vec![("camera".into(), Polarity::Positive)]);
        let got = polarities("This camera takes blurry pictures.");
        assert_eq!(got, vec![("camera".into(), Polarity::Negative)]);
    }

    #[test]
    fn neutral_mention() {
        let got = polarities("This camera has a three inch screen.");
        assert_eq!(got, vec![("camera".into(), Polarity::Neutral)]);
    }

    #[test]
    fn subject_not_target_stays_neutral() {
        // sentiment is about the pictures' subject (camera absent as target)
        let got = polarities("The camera sat on the shelf while the movie played.");
        assert_eq!(got, vec![("camera".into(), Polarity::Neutral)]);
    }

    #[test]
    fn multiple_sentences_independent() {
        let got = polarities("The camera is excellent. The NR70 is terrible.");
        assert!(got.contains(&("camera".into(), Polarity::Positive)));
        assert!(got.contains(&("NR70".into(), Polarity::Negative)));
    }

    #[test]
    fn named_entity_mode_finds_subjects() {
        let miner = SentimentMiner::with_default_resources();
        let records =
            miner.analyze_named_entities("Zorblax shipped a great product. Quuxcorp struggled.");
        let got: Vec<(String, Polarity)> = mention_polarities(&records)
            .into_iter()
            .map(|(s, _, p)| (s, p))
            .collect();
        assert!(
            got.contains(&("Zorblax".into(), Polarity::Positive)),
            "{got:?}"
        );
        assert!(
            got.contains(&("Quuxcorp".into(), Polarity::Negative)),
            "{got:?}"
        );
    }

    #[test]
    fn empty_text_and_no_spots() {
        let miner = SentimentMiner::with_default_resources();
        assert!(miner.analyze_text("", &subjects()).is_empty());
        assert!(miner
            .analyze_text("Nothing relevant here.", &subjects())
            .is_empty());
    }
}

//! Aspect-level sentiment aggregation.
//!
//! The paper's first design goal: "not only the overall opinion about a
//! topic, but also sentiment about individual aspects of the topic is
//! essential information [...] though one is generally happy about a
//! digital camera, he might be dissatisfied by the short battery life."
//!
//! An [`AspectModel`] maps each topic to its feature terms (hand-given or
//! produced by the feature extractor); [`aggregate`] folds per-mention
//! sentiment records into per-topic, per-aspect summaries.

use crate::record::SubjectSentiment;
use std::collections::BTreeMap;
use wf_types::Polarity;

/// Topic → feature-term ownership.
#[derive(Debug, Clone, Default)]
pub struct AspectModel {
    /// topic (canonical, lower-cased) → feature terms (lower-cased).
    features_of: BTreeMap<String, Vec<String>>,
}

impl AspectModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a topic with its feature terms. Feature terms may be
    /// shared between topics (e.g. "battery" for every camera).
    pub fn topic<I, S>(mut self, topic: &str, features: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.features_of.insert(
            topic.to_lowercase(),
            features
                .into_iter()
                .map(|f| f.into().to_lowercase())
                .collect(),
        );
        self
    }

    /// The topics declared, sorted.
    pub fn topics(&self) -> Vec<&str> {
        self.features_of.keys().map(String::as_str).collect()
    }

    /// The features of a topic.
    pub fn features(&self, topic: &str) -> &[String] {
        self.features_of
            .get(&topic.to_lowercase())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// True when `term` is a feature of `topic`.
    pub fn owns(&self, topic: &str, term: &str) -> bool {
        self.features(topic)
            .iter()
            .any(|f| f == &term.to_lowercase())
    }
}

/// Sentiment tallies for one aspect (or for the topic itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AspectTally {
    pub positive: usize,
    pub negative: usize,
    pub neutral: usize,
}

impl AspectTally {
    fn add(&mut self, polarity: Polarity) {
        match polarity {
            Polarity::Positive => self.positive += 1,
            Polarity::Negative => self.negative += 1,
            Polarity::Neutral => self.neutral += 1,
        }
    }

    /// Net sentiment score (#positive − #negative).
    pub fn net(&self) -> i64 {
        self.positive as i64 - self.negative as i64
    }

    /// Total sentiment-bearing mentions.
    pub fn sentiment_mentions(&self) -> usize {
        self.positive + self.negative
    }

    /// Fraction of sentiment-bearing mentions that are positive
    /// (`None` when there are none).
    pub fn satisfaction(&self) -> Option<f64> {
        let n = self.sentiment_mentions();
        if n == 0 {
            None
        } else {
            Some(self.positive as f64 / n as f64)
        }
    }
}

/// Per-topic summary: direct sentiment plus per-aspect tallies.
#[derive(Debug, Clone, Default)]
pub struct TopicSummary {
    /// Sentiment directed at the topic term itself.
    pub direct: AspectTally,
    /// Sentiment per feature term, in the model's feature order.
    pub aspects: BTreeMap<String, AspectTally>,
}

impl TopicSummary {
    /// Overall tally: direct + all aspects (the paper's point is that
    /// this can be positive while one aspect is strongly negative).
    pub fn overall(&self) -> AspectTally {
        let mut total = self.direct;
        for tally in self.aspects.values() {
            total.positive += tally.positive;
            total.negative += tally.negative;
            total.neutral += tally.neutral;
        }
        total
    }

    /// Aspects sorted by ascending net sentiment — weakest first (the
    /// "individual weaknesses ... important to know" view).
    pub fn weakest_aspects(&self) -> Vec<(&str, AspectTally)> {
        let mut aspects: Vec<(&str, AspectTally)> = self
            .aspects
            .iter()
            .map(|(name, tally)| (name.as_str(), *tally))
            .collect();
        aspects.sort_by_key(|(_, t)| t.net());
        aspects
    }
}

/// Folds sentiment records into per-topic summaries under an aspect
/// model. Records about a topic count as `direct`; records about one of
/// the topic's features count under that aspect.
pub fn aggregate(
    model: &AspectModel,
    records: &[SubjectSentiment],
) -> BTreeMap<String, TopicSummary> {
    let mut out: BTreeMap<String, TopicSummary> = BTreeMap::new();
    for topic in model.topics() {
        out.insert(topic.to_string(), TopicSummary::default());
    }
    for record in records {
        let subject = record.subject.to_lowercase();
        for topic in model.topics() {
            let summary = out.get_mut(topic).expect("pre-inserted");
            if subject == topic {
                summary.direct.add(record.polarity);
            } else if model.owns(topic, &subject) {
                summary
                    .aspects
                    .entry(subject.clone())
                    .or_default()
                    .add(record.polarity);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::SentimentMiner;
    use wf_spotter::SubjectList;

    fn model() -> AspectModel {
        AspectModel::new().topic("camera", ["battery", "picture quality", "flash"])
    }

    fn records(text: &str) -> Vec<SubjectSentiment> {
        let subjects = SubjectList::builder()
            .subject("camera", ["camera"])
            .subject("battery", ["battery", "battery life"])
            .subject("picture quality", ["picture quality"])
            .subject("flash", ["flash"])
            .build();
        SentimentMiner::with_default_resources().analyze_text(text, &subjects)
    }

    #[test]
    fn paper_scenario_happy_overall_unhappy_battery() {
        let text = "This camera takes excellent pictures. The picture quality is \
                    superb. The flash works well. The battery drains quickly and \
                    the battery disappointed me.";
        let summaries = aggregate(&model(), &records(text));
        let camera = &summaries["camera"];
        assert!(camera.overall().net() > 0, "overall should be positive");
        let battery = camera.aspects.get("battery").expect("battery aspect");
        assert!(battery.net() < 0, "battery aspect should be negative");
        let weakest = camera.weakest_aspects();
        assert_eq!(weakest.first().map(|(n, _)| *n), Some("battery"));
    }

    #[test]
    fn direct_vs_aspect_separation() {
        let text = "The camera is excellent. The flash is terrible.";
        let summaries = aggregate(&model(), &records(text));
        let camera = &summaries["camera"];
        assert_eq!(camera.direct.positive, 1);
        assert_eq!(camera.direct.negative, 0);
        assert_eq!(camera.aspects["flash"].negative, 1);
    }

    #[test]
    fn satisfaction_fraction() {
        let mut tally = AspectTally::default();
        tally.add(Polarity::Positive);
        tally.add(Polarity::Positive);
        tally.add(Polarity::Negative);
        tally.add(Polarity::Neutral);
        assert_eq!(tally.satisfaction(), Some(2.0 / 3.0));
        assert_eq!(AspectTally::default().satisfaction(), None);
    }

    #[test]
    fn unknown_subjects_are_ignored() {
        let summaries = aggregate(&model(), &records("The menu is confusing."));
        assert!(summaries["camera"].aspects.is_empty());
        assert_eq!(summaries["camera"].direct, AspectTally::default());
    }

    #[test]
    fn shared_features_count_for_every_owner() {
        let model = AspectModel::new()
            .topic("canon", ["battery"])
            .topic("nikon", ["battery"]);
        let recs = records("The battery is terrible.");
        let summaries = aggregate(&model, &recs);
        assert_eq!(summaries["canon"].aspects["battery"].negative, 1);
        assert_eq!(summaries["nikon"].aspects["battery"].negative, 1);
    }
}

//! The sentiment miner — the paper's primary contribution.
//!
//! "Instead of classifying the sentiment of an entire document about a
//! subject, our sentiment miner determines sentiment of each subject
//! reference using natural language processing techniques." The miner
//! consists of subject spotting, optional topic-specific feature
//! extraction, sentiment extraction for each sentiment-bearing phrase, and
//! sentiment assignment to the appropriate topic.
//!
//! - [`phrase`]: sentiment of a phrase from lexicon terms + negation;
//! - [`analyzer`]: pattern matching and semantic relationship analysis;
//! - [`context`]: sentiment context window formation;
//! - [`miner`]: the [`SentimentMiner`] facade (modes A and B);
//! - [`record`]: output records;
//! - [`platform_miners`]: WebFountain integration (entity miners, the
//!   sentiment index and its query service);
//! - [`sindex`]: the precomputed, sharded sentiment index (per-(subject,
//!   sentence) polarity postings, co-sharded with the data store);
//! - [`serve`]: the sentiment index as a query-time serving backend for
//!   `wf_platform::serving` ("sentiment of X", "top k by polarity").

pub mod analyzer;
pub mod aspects;
pub mod context;
pub mod miner;
pub mod phrase;
pub mod platform_miners;
pub mod record;
pub mod serve;
pub mod sindex;
pub mod trends;

pub use analyzer::{AnalyzerConfig, Evidence, SentimentAnalyzer, SentimentAssignment};
pub use aspects::{aggregate, AspectModel, AspectTally, TopicSummary};
pub use context::{form_context, ContextWindowRule, SentimentContext};
pub use miner::{mention_polarities, SentimentMiner};
pub use platform_miners::{
    AdhocSentimentMiner, SentimentEntityMiner, SentimentHit, SentimentQueryService, SpotterMiner,
};
pub use record::{dominant_polarity, EvidenceKind, SubjectSentiment};
pub use serve::{SentimentServingBackend, ServeRequest, DEGRADED_SHARD_PENALTY_MS};
pub use sindex::{SentimentIndexShard, SentimentPosting, ShardedSentimentIndex, SubjectSummary};
pub use trends::{sentiment_trends, TrendDirection, TrendPoint, TrendSeries};
// re-export so downstream users need only this crate for mode A
pub use wf_spotter::{SubjectList, SubjectListBuilder};

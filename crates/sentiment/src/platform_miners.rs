//! Platform integration: the sentiment miner as WebFountain entity miners,
//! plus the query-time sentiment index service (mode B).
//!
//! Mode A (Figure 2): [`SpotterMiner`] → [`SentimentEntityMiner`] annotate
//! entities with `spot` and `sentiment` annotations; sentiments land in a
//! database (here: the entity annotations + conceptual index).
//!
//! Mode B (Figure 3): [`AdhocSentimentMiner`] runs the named entity spotter
//! over every document offline and annotates sentiment for each entity;
//! indexing the `sentiment:subject=...` conceptual tokens then serves
//! real-time queries through [`SentimentQueryService`].

use crate::miner::{mention_polarities, SentimentMiner};
use wf_platform::{Annotation, Entity, EntityMiner, Indexer, Query, TraceSpan};
use wf_spotter::{Spotter, SubjectList};
use wf_types::{DocId, Polarity, Result};

/// Entity miner that annotates subject spots (`spot` annotations),
/// optionally filtering each synset's spots through a disambiguator.
pub struct SpotterMiner {
    subjects: SubjectList,
    spotter: Spotter,
    disambiguators: std::collections::HashMap<wf_types::SynsetId, wf_spotter::Disambiguator>,
}

impl SpotterMiner {
    pub fn new(subjects: SubjectList) -> Self {
        let spotter = Spotter::new(&subjects);
        SpotterMiner {
            subjects,
            spotter,
            disambiguators: std::collections::HashMap::new(),
        }
    }

    /// Attaches a disambiguator for one subject: its spots are dropped
    /// when the context says they refer to something else.
    pub fn with_disambiguator(
        mut self,
        subject: &str,
        disambiguator: wf_spotter::Disambiguator,
    ) -> Self {
        if let Some(id) = self.subjects.id_of(subject) {
            self.disambiguators.insert(id, disambiguator);
        }
        self
    }
}

impl EntityMiner for SpotterMiner {
    fn name(&self) -> &str {
        "spotter"
    }

    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.clear_annotations("spot");
        let spots = self.spotter.spot(&entity.text);
        // per-synset disambiguation verdicts
        let mut keep = vec![true; spots.len()];
        for (synset, disambiguator) in &self.disambiguators {
            let indices: Vec<usize> = spots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.synset == *synset)
                .map(|(i, _)| i)
                .collect();
            if indices.is_empty() {
                continue;
            }
            let subset: Vec<wf_spotter::Spot> = indices.iter().map(|&i| spots[i].clone()).collect();
            let verdicts = disambiguator.disambiguate(&entity.text, &subset);
            for (&i, verdict) in indices.iter().zip(&verdicts) {
                keep[i] = *verdict == wf_spotter::SpotVerdict::OnTopic;
            }
        }
        for (spot, keep) in spots.iter().zip(keep) {
            if !keep {
                continue;
            }
            let canonical = self
                .subjects
                .get(spot.synset)
                .map(|s| s.canonical.clone())
                .unwrap_or_else(|| spot.variant.clone());
            entity.annotate(
                Annotation::new("spot", spot.span)
                    .with_attr("synset", spot.synset.as_u32().to_string())
                    .with_attr("subject", canonical),
            );
        }
        Ok(())
    }
}

/// Entity miner that runs mode-A sentiment analysis and stores `sentiment`
/// annotations (one per mention, with the dominant polarity).
pub struct SentimentEntityMiner {
    miner: SentimentMiner,
    subjects: SubjectList,
    spotter: Spotter,
}

impl SentimentEntityMiner {
    pub fn new(subjects: SubjectList) -> Self {
        let spotter = Spotter::new(&subjects);
        SentimentEntityMiner {
            miner: SentimentMiner::with_default_resources(),
            subjects,
            spotter,
        }
    }
}

impl EntityMiner for SentimentEntityMiner {
    fn name(&self) -> &str {
        "sentiment-miner"
    }

    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.clear_annotations("sentiment");
        let records = self
            .miner
            .analyze_with_spotter(&entity.text, &self.subjects, &self.spotter);
        for (subject, sentence_span, polarity) in mention_polarities(&records) {
            entity.annotate(
                Annotation::new("sentiment", sentence_span)
                    .with_attr("subject", subject.to_lowercase())
                    .with_attr("polarity", polarity.to_string()),
            );
        }
        Ok(())
    }
}

/// Entity miner for mode B: subjects are discovered by the named entity
/// spotter at mining time.
pub struct AdhocSentimentMiner {
    miner: SentimentMiner,
}

impl Default for AdhocSentimentMiner {
    fn default() -> Self {
        Self::new()
    }
}

impl AdhocSentimentMiner {
    pub fn new() -> Self {
        AdhocSentimentMiner {
            miner: SentimentMiner::with_default_resources(),
        }
    }
}

impl EntityMiner for AdhocSentimentMiner {
    fn name(&self) -> &str {
        "adhoc-sentiment-miner"
    }

    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.clear_annotations("sentiment");
        let records = self.miner.analyze_named_entities(&entity.text);
        for (subject, sentence_span, polarity) in mention_polarities(&records) {
            entity.annotate(
                Annotation::new("sentiment", sentence_span)
                    .with_attr("subject", subject.to_lowercase())
                    .with_attr("polarity", polarity.to_string()),
            );
        }
        Ok(())
    }

    fn process_batch(&self, batch: &mut [Entity]) -> Vec<Result<()>> {
        let texts: Vec<String> = batch.iter().map(|e| e.text.clone()).collect();
        let record_sets = self.miner.analyze_named_entities_batch(&texts);
        for (entity, records) in batch.iter_mut().zip(&record_sets) {
            entity.clear_annotations("sentiment");
            for (subject, sentence_span, polarity) in mention_polarities(records) {
                entity.annotate(
                    Annotation::new("sentiment", sentence_span)
                        .with_attr("subject", subject.to_lowercase())
                        .with_attr("polarity", polarity.to_string()),
                );
            }
        }
        batch.iter().map(|_| Ok(())).collect()
    }

    /// The batched hot path with per-stage attribution: charges the
    /// batch's deterministic NLP unit costs to `nlp.tokenize` …
    /// `nlp.ner` child spans (one unit per token / chunk / clause /
    /// entity, see [`wf_nlp::StageCosts`]) and advances the shard span in
    /// lockstep, so the continuous profiler sees where mining time goes.
    /// Entity outcomes are identical to [`EntityMiner::process_batch`].
    fn process_batch_traced(&self, batch: &mut [Entity], span: &mut TraceSpan) -> Vec<Result<()>> {
        let texts: Vec<String> = batch.iter().map(|e| e.text.clone()).collect();
        let (record_sets, costs) = self.miner.analyze_named_entities_batch_costed(&texts);
        for (stage, units) in costs.stages() {
            if units == 0 {
                continue;
            }
            let mut stage_span = span.child(format!("nlp.{stage}"));
            stage_span.advance(units);
            stage_span.attr("units", units.to_string());
            stage_span.finish();
            span.advance(units);
        }
        for (entity, records) in batch.iter_mut().zip(&record_sets) {
            entity.clear_annotations("sentiment");
            for (subject, sentence_span, polarity) in mention_polarities(records) {
                entity.annotate(
                    Annotation::new("sentiment", sentence_span)
                        .with_attr("subject", subject.to_lowercase())
                        .with_attr("polarity", polarity.to_string()),
                );
            }
        }
        batch.iter().map(|_| Ok(())).collect()
    }
}

/// One hit served by the sentiment query service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentimentHit {
    pub doc: DocId,
    pub subject: String,
    pub polarity: Polarity,
    /// The sentiment-bearing sentence text.
    pub sentence: String,
}

/// Mode B's real-time query side: looks up subjects in the sentiment index.
pub struct SentimentQueryService;

impl SentimentQueryService {
    /// The paper's rejected alternative, implemented for comparison:
    /// "the system could, in principle, search for the subject terms,
    /// identify subject spots, build corresponding sentiment contexts,
    /// and apply the sentiment analysis at run time. This runtime
    /// execution of sentiment analysis is too slow for most users
    /// expecting real time response." Analyzes the whole corpus at query
    /// time with no index. Exists so the indexed path's speedup can be
    /// measured (see the `mode_b_latency` bench).
    pub fn query_runtime(
        store: &wf_platform::DataStore,
        subject: &str,
        polarity: Option<Polarity>,
    ) -> Result<Vec<SentimentHit>> {
        let miner = SentimentMiner::with_default_resources();
        let subjects = wf_spotter::SubjectList::builder()
            .subject(subject, [subject.to_string()])
            .build();
        let spotter = Spotter::new(&subjects);
        let mut hits = Vec::new();
        store.for_each(|entity| {
            let records = miner.analyze_with_spotter(&entity.text, &subjects, &spotter);
            for (subj, sentence_span, pol) in mention_polarities(&records) {
                if !pol.is_sentiment() || polarity.is_some_and(|p| p != pol) {
                    continue;
                }
                if !subj.eq_ignore_ascii_case(subject) {
                    continue;
                }
                hits.push(SentimentHit {
                    doc: entity.id,
                    subject: subject.to_string(),
                    polarity: pol,
                    sentence: sentence_span.slice(&entity.text).to_string(),
                });
            }
        });
        Ok(hits)
    }
    /// All sentiment hits for a subject (case-insensitive), optionally
    /// filtered by polarity.
    pub fn query(
        indexer: &Indexer,
        store: &wf_platform::DataStore,
        subject: &str,
        polarity: Option<Polarity>,
    ) -> Result<Vec<SentimentHit>> {
        let subject_lower = subject.to_lowercase();
        let mut query = vec![Query::Concept(format!("sentiment:subject={subject_lower}"))];
        if let Some(p) = polarity {
            query.push(Query::Concept(format!("sentiment:polarity={p}")));
        }
        let docs = indexer.query(&Query::And(query))?;
        let mut hits = Vec::new();
        for doc in docs {
            let entity = store.get(doc)?;
            for ann in entity.annotations_of("sentiment") {
                if ann.attr("subject") != Some(subject_lower.as_str()) {
                    continue;
                }
                let pol = ann
                    .attr("polarity")
                    .and_then(Polarity::parse)
                    .unwrap_or(Polarity::Neutral);
                if polarity.is_some_and(|p| p != pol) {
                    continue;
                }
                hits.push(SentimentHit {
                    doc,
                    subject: subject.to_string(),
                    polarity: pol,
                    sentence: ann.span.slice(&entity.text).to_string(),
                });
            }
        }
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_platform::{Cluster, MinerPipeline, RawDocument, SourceKind};

    fn subjects() -> SubjectList {
        SubjectList::builder()
            .subject("NR70", ["NR70"])
            .subject("camera", ["camera", "cameras"])
            .build()
    }

    fn seeded_cluster() -> Cluster {
        let cluster = Cluster::new(2).unwrap();
        let docs = [
            "The NR70 takes excellent pictures. The battery drains quickly.",
            "This camera is terrible and the menu is confusing.",
            "Nothing about products here at all.",
        ];
        {
            let mut ing = wf_platform::Ingestor::new(cluster.store());
            for (i, text) in docs.iter().enumerate() {
                ing.ingest(RawDocument::new(
                    format!("uri://{i}"),
                    SourceKind::Web,
                    *text,
                ));
            }
        }
        cluster
    }

    #[test]
    fn mode_a_pipeline_annotates_and_indexes() {
        let cluster = seeded_cluster();
        let pipeline = MinerPipeline::new()
            .add(Box::new(SpotterMiner::new(subjects())))
            .add(Box::new(SentimentEntityMiner::new(subjects())));
        let stats = cluster.run_pipeline(&pipeline);
        assert_eq!(stats.processed, 3);
        cluster.rebuild_index();

        let e0 = cluster.store().get(DocId(0)).unwrap();
        assert!(e0.annotations_of("spot").count() >= 1);
        let sentiments: Vec<_> = e0.annotations_of("sentiment").collect();
        assert!(sentiments
            .iter()
            .any(|a| a.attr("subject") == Some("nr70") && a.attr("polarity") == Some("+")));

        let hits = SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            "NR70",
            Some(Polarity::Positive),
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].sentence.contains("excellent pictures"));
    }

    #[test]
    fn mode_a_negative_query() {
        let cluster = seeded_cluster();
        let pipeline = MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subjects())));
        cluster.run_pipeline(&pipeline);
        cluster.rebuild_index();
        let hits = SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            "camera",
            Some(Polarity::Negative),
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].sentence.contains("terrible"));
    }

    #[test]
    fn mode_b_discovers_entities() {
        let cluster = Cluster::new(1).unwrap();
        {
            let mut ing = wf_platform::Ingestor::new(cluster.store());
            ing.ingest(RawDocument::new(
                "uri://0",
                SourceKind::News,
                "Petrocorp polluted the river. Medicore delivered excellent results.",
            ));
        }
        let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
        cluster.run_pipeline(&pipeline);
        cluster.rebuild_index();
        let neg = SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            "Petrocorp",
            Some(Polarity::Negative),
        )
        .unwrap();
        assert_eq!(neg.len(), 1);
        let pos = SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            "Medicore",
            Some(Polarity::Positive),
        )
        .unwrap();
        assert_eq!(pos.len(), 1);
    }

    #[test]
    fn query_unknown_subject_is_empty() {
        let cluster = seeded_cluster();
        cluster.rebuild_index();
        let hits =
            SentimentQueryService::query(cluster.indexer(), cluster.store(), "nothing", None)
                .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn runtime_query_matches_indexed_query() {
        let cluster = seeded_cluster();
        let pipeline = MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subjects())));
        cluster.run_pipeline(&pipeline);
        cluster.rebuild_index();
        let indexed = SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            "NR70",
            Some(Polarity::Positive),
        )
        .unwrap();
        let runtime =
            SentimentQueryService::query_runtime(cluster.store(), "NR70", Some(Polarity::Positive))
                .unwrap();
        assert_eq!(indexed.len(), runtime.len());
        assert_eq!(indexed[0].sentence, runtime[0].sentence);
    }

    #[test]
    fn adhoc_batch_matches_per_entity_processing() {
        let docs = [
            "Petrocorp polluted the river. Medicore delivered excellent results.",
            "The NR70 takes excellent pictures. The battery drains quickly.",
            "Nothing about products here at all.",
            "",
        ];
        let seed = |cluster: &Cluster| {
            let mut ing = wf_platform::Ingestor::new(cluster.store());
            for (i, text) in docs.iter().enumerate() {
                ing.ingest(RawDocument::new(
                    format!("uri://{i}"),
                    SourceKind::News,
                    *text,
                ));
            }
        };
        let per_entity = Cluster::new(2).unwrap();
        seed(&per_entity);
        let batched = Cluster::new(2).unwrap();
        seed(&batched);

        let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
        let stats_run = pipeline.run(per_entity.store());
        let stats_batched = pipeline.run_batched(batched.store(), 2);
        assert_eq!(stats_run.processed, stats_batched.processed);
        assert_eq!(stats_run.failed, stats_batched.failed);

        for i in 0..docs.len() {
            let a = per_entity.store().get(DocId(i as u64)).unwrap();
            let b = batched.store().get(DocId(i as u64)).unwrap();
            assert_eq!(a, b, "entity {i} diverged between run and run_batched");
        }
    }

    #[test]
    fn adhoc_traced_batch_matches_and_attributes_nlp_stages() {
        let docs = [
            "Petrocorp polluted the river. Medicore delivered excellent results.",
            "The NR70 takes excellent pictures. The battery drains quickly.",
            "Nothing about products here at all.",
        ];
        let seed = |cluster: &Cluster| {
            let mut ing = wf_platform::Ingestor::new(cluster.store());
            for (i, text) in docs.iter().enumerate() {
                ing.ingest(RawDocument::new(
                    format!("uri://{i}"),
                    SourceKind::News,
                    *text,
                ));
            }
        };
        let plain = Cluster::new(2).unwrap();
        seed(&plain);
        let traced = Cluster::new(2).unwrap();
        seed(&traced);

        let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
        let a = pipeline.run_batched(plain.store(), 4);
        let tele = traced.store().telemetry().clone();
        let mut op = tele.trace_root("mine.batched");
        let b = pipeline.run_batched_traced(traced.store(), 4, &mut op);
        op.finish();
        assert_eq!((a.processed, a.failed), (b.processed, b.failed));
        for i in 0..docs.len() {
            let x = plain.store().get(DocId(i as u64)).unwrap();
            let y = traced.store().get(DocId(i as u64)).unwrap();
            assert_eq!(x, y, "entity {i} diverged under tracing");
        }

        let traces = tele.recorder().last_traces(1);
        let run = traces[0].1[0]
            .find("mine.batched/pipeline.run")
            .expect("pipeline.run span");
        let mut stage_names = std::collections::BTreeSet::new();
        for shard in &run.children {
            // the NLP stage children exactly cover the shard's time
            let covered: u64 = shard.children.iter().map(|c| c.duration_sim_ms).sum();
            assert_eq!(covered, shard.duration_sim_ms, "{}", shard.name);
            for stage in &shard.children {
                stage_names.insert(stage.name.clone());
            }
        }
        for expected in [
            "nlp.tokenize",
            "nlp.pos",
            "nlp.chunk",
            "nlp.clause",
            "nlp.ner",
        ] {
            assert!(stage_names.contains(expected), "missing {expected} span");
        }
    }

    #[test]
    fn disambiguating_spotter_drops_off_topic_spots() {
        use wf_spotter::{Disambiguator, TopicContext};
        let subjects = SubjectList::builder().subject("Apex", ["Apex"]).build();
        let miner = SpotterMiner::new(subjects).with_disambiguator(
            "Apex",
            Disambiguator::with_context(TopicContext {
                on_topic: vec!["camera".into(), "lens".into()],
                off_topic: vec!["ridge".into(), "summit".into(), "trail".into()],
                affinities: vec![],
            }),
        );
        let mut on = Entity::new(
            "a",
            wf_platform::SourceKind::Web,
            "The Apex camera has a fine lens and a camera strap.",
        );
        miner.process(&mut on).unwrap();
        assert_eq!(on.annotations_of("spot").count(), 1);
        let mut off = Entity::new(
            "b",
            wf_platform::SourceKind::Web,
            "We reached the Apex of the ridge on the summit trail.",
        );
        miner.process(&mut off).unwrap();
        assert_eq!(off.annotations_of("spot").count(), 0);
    }
}

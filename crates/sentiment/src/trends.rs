//! Market-trend tracking over mined sentiment.
//!
//! The reputation management application built on WebFountain supports
//! "tracking of market trends": per-period aggregation of a subject's
//! sentiment and detection of improving/declining reputation. This module
//! is a corpus-level consumer of the `sentiment` annotations the entity
//! miners attach.

use crate::aspects::AspectTally;
use std::collections::BTreeMap;
use wf_platform::DataStore;
use wf_types::Polarity;

/// One period's tally for a subject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendPoint {
    /// Period label, taken from entity metadata (sorted lexicographically;
    /// use sortable labels like "2004-03").
    pub period: String,
    pub tally: AspectTally,
}

/// Direction of a reputation trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendDirection {
    Improving,
    Declining,
    Flat,
}

/// A subject's per-period sentiment series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSeries {
    pub subject: String,
    /// Points in period order.
    pub points: Vec<TrendPoint>,
}

impl TrendSeries {
    /// Least-squares slope of the per-period *satisfaction rate*
    /// (positive / sentiment-bearing mentions) against the period index.
    /// Periods without sentiment mentions are skipped.
    pub fn slope(&self) -> f64 {
        let ys: Vec<(f64, f64)> = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.tally.satisfaction().map(|s| (i as f64, s)))
            .collect();
        let n = ys.len() as f64;
        if ys.len() < 2 {
            return 0.0;
        }
        let sum_x: f64 = ys.iter().map(|(x, _)| x).sum();
        let sum_y: f64 = ys.iter().map(|(_, y)| y).sum();
        let sum_xy: f64 = ys.iter().map(|(x, y)| x * y).sum();
        let sum_xx: f64 = ys.iter().map(|(x, _)| x * x).sum();
        let denom = n * sum_xx - sum_x * sum_x;
        if denom.abs() < f64::EPSILON {
            0.0
        } else {
            (n * sum_xy - sum_x * sum_y) / denom
        }
    }

    /// Classifies the trend; `threshold` is the minimum absolute slope in
    /// satisfaction-rate per period (e.g. 0.02 = two points per period).
    pub fn direction(&self, threshold: f64) -> TrendDirection {
        let slope = self.slope();
        if slope > threshold {
            TrendDirection::Improving
        } else if slope < -threshold {
            TrendDirection::Declining
        } else {
            TrendDirection::Flat
        }
    }

    /// Total mentions across all periods.
    pub fn total_mentions(&self) -> usize {
        self.points
            .iter()
            .map(|p| p.tally.positive + p.tally.negative + p.tally.neutral)
            .sum()
    }
}

/// Aggregates `sentiment` annotations across the store into per-subject
/// trend series, bucketed by the entity metadata field `period_key`.
/// Entities without the metadata field are skipped.
pub fn sentiment_trends(store: &DataStore, period_key: &str) -> Vec<TrendSeries> {
    let mut buckets: BTreeMap<String, BTreeMap<String, AspectTally>> = BTreeMap::new();
    let mut periods: Vec<String> = Vec::new();
    store.for_each(|entity| {
        let Some(period) = entity.metadata.get(period_key) else {
            return;
        };
        if !periods.iter().any(|p| p == period) {
            periods.push(period.clone());
        }
        for ann in entity.annotations_of("sentiment") {
            let Some(subject) = ann.attr("subject") else {
                continue;
            };
            let polarity = ann
                .attr("polarity")
                .and_then(Polarity::parse)
                .unwrap_or(Polarity::Neutral);
            let tally = buckets
                .entry(subject.to_string())
                .or_default()
                .entry(period.clone())
                .or_default();
            match polarity {
                Polarity::Positive => tally.positive += 1,
                Polarity::Negative => tally.negative += 1,
                Polarity::Neutral => tally.neutral += 1,
            }
        }
    });
    periods.sort();
    buckets
        .into_iter()
        .map(|(subject, by_period)| TrendSeries {
            subject,
            points: periods
                .iter()
                .map(|p| TrendPoint {
                    period: p.clone(),
                    tally: by_period.get(p).copied().unwrap_or_default(),
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_platform::{Annotation, Entity, SourceKind};
    use wf_types::Span;

    fn entity(month: &str, subject: &str, polarity: &str) -> Entity {
        let mut e = Entity::new("u", SourceKind::Web, "text here").with_metadata("month", month);
        e.annotate(
            Annotation::new("sentiment", Span::new(0, 4))
                .with_attr("subject", subject)
                .with_attr("polarity", polarity),
        );
        e
    }

    fn store_with_drift() -> DataStore {
        let store = DataStore::single();
        // canon: improving month over month; nikon: flat
        let schedule = [("2004-01", 1, 4), ("2004-02", 3, 3), ("2004-03", 5, 1)];
        for (month, pos, neg) in schedule {
            for _ in 0..pos {
                store.insert(entity(month, "canon", "+"));
            }
            for _ in 0..neg {
                store.insert(entity(month, "canon", "-"));
            }
            store.insert(entity(month, "nikon", "+"));
            store.insert(entity(month, "nikon", "-"));
        }
        store
    }

    #[test]
    fn detects_improving_trend() {
        let trends = sentiment_trends(&store_with_drift(), "month");
        let canon = trends.iter().find(|t| t.subject == "canon").unwrap();
        assert_eq!(canon.points.len(), 3);
        assert!(canon.slope() > 0.2, "slope {}", canon.slope());
        assert_eq!(canon.direction(0.05), TrendDirection::Improving);
    }

    #[test]
    fn flat_series_is_flat() {
        let trends = sentiment_trends(&store_with_drift(), "month");
        let nikon = trends.iter().find(|t| t.subject == "nikon").unwrap();
        assert_eq!(nikon.direction(0.05), TrendDirection::Flat);
    }

    #[test]
    fn declining_mirror() {
        let store = DataStore::single();
        for (month, pos, neg) in [("a", 4, 0), ("b", 2, 2), ("c", 0, 4)] {
            for _ in 0..pos {
                store.insert(entity(month, "x", "+"));
            }
            for _ in 0..neg {
                store.insert(entity(month, "x", "-"));
            }
        }
        let trends = sentiment_trends(&store, "month");
        assert_eq!(trends[0].direction(0.05), TrendDirection::Declining);
    }

    #[test]
    fn entities_without_period_are_skipped() {
        let store = DataStore::single();
        let mut e = Entity::new("u", SourceKind::Web, "text");
        e.annotate(
            Annotation::new("sentiment", Span::new(0, 4))
                .with_attr("subject", "x")
                .with_attr("polarity", "+"),
        );
        store.insert(e);
        assert!(sentiment_trends(&store, "month").is_empty());
    }

    #[test]
    fn single_period_has_zero_slope() {
        let store = DataStore::single();
        store.insert(entity("only", "x", "+"));
        let trends = sentiment_trends(&store, "month");
        assert_eq!(trends[0].slope(), 0.0);
        assert_eq!(trends[0].direction(0.05), TrendDirection::Flat);
        assert_eq!(trends[0].total_mentions(), 1);
    }

    #[test]
    fn periods_align_across_subjects() {
        let trends = sentiment_trends(&store_with_drift(), "month");
        for t in &trends {
            let labels: Vec<&str> = t.points.iter().map(|p| p.period.as_str()).collect();
            assert_eq!(labels, vec!["2004-01", "2004-02", "2004-03"]);
        }
    }
}

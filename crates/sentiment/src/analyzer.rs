//! The sentiment analyzer: pattern matching and semantic relationship
//! analysis over parsed sentences.
//!
//! For each clause, the analyzer identifies the predicate, finds the best
//! matching sentiment pattern in the pattern database, computes the
//! sentiment (fixed, or transferred from a source component via the
//! sentiment lexicon), applies sentence-level negation, and emits
//! assignments to target token regions. Additional relationship rules
//! cover attributive adjectives ("the excellent camera"), existential
//! clauses ("there is a lack of ..."), and contrastive leading PPs
//! ("Unlike the T series CLIEs, ...").

use crate::phrase::{manner_polarity, phrase_polarity};
use wf_lexicon::{Assignment, Component, PatternDatabase, SentimentLexicon, SentimentPattern};
use wf_nlp::{AnalyzedSentence, Chunk, ChunkKind, Clause, PosTag};
use wf_types::Polarity;

/// How an assignment was derived (evidence for reports and debugging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evidence {
    /// A sentiment pattern of the predicate matched.
    Pattern {
        predicate: String,
        target: Component,
    },
    /// Attributive sentiment adjectives inside the target NP itself.
    Attributive,
    /// Existential clause: "there is a lack of X" assigns to X.
    Existential,
    /// Contrastive leading PP ("unlike ..." inverts, "like"/"as" copies).
    Contrast {
        /// The preposition that triggered the rule.
        preposition: String,
    },
}

/// One sentiment assignment: a polarity directed at a token region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentimentAssignment {
    /// Target token ranges (sentence-local `[start, end)` pairs). A subject
    /// region includes the subject NP and its attached PPs.
    pub ranges: Vec<(usize, usize)>,
    pub polarity: Polarity,
    pub evidence: Evidence,
}

impl SentimentAssignment {
    /// True when any range contains the token index.
    pub fn covers_token(&self, token: usize) -> bool {
        self.ranges.iter().any(|&(s, e)| s <= token && token < e)
    }
}

/// The analyzer, parameterized by the two linguistic resources.
pub struct SentimentAnalyzer {
    lexicon: &'static SentimentLexicon,
    patterns: &'static PatternDatabase,
    config: AnalyzerConfig,
}

/// Toggles for the analyzer's relationship-analysis rules, used by the
/// ablation experiments to quantify each rule's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// Reverse pattern polarity under verb-group negation.
    pub negation: bool,
    /// Mirror subject sentiment onto contrastive leading PPs.
    pub contrast: bool,
    /// Assign premodifier sentiment to the containing NP.
    pub attributive: bool,
    /// Handle existential "there is a lack of ..." clauses.
    pub existential: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            negation: true,
            contrast: true,
            attributive: true,
            existential: true,
        }
    }
}

impl Default for SentimentAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl SentimentAnalyzer {
    /// Analyzer over the embedded default lexicon and pattern database.
    pub fn new() -> Self {
        Self::with_config(AnalyzerConfig::default())
    }

    /// Analyzer with selected relationship rules disabled (ablations).
    pub fn with_config(config: AnalyzerConfig) -> Self {
        SentimentAnalyzer {
            lexicon: SentimentLexicon::default_lexicon(),
            patterns: PatternDatabase::default_database(),
            config,
        }
    }

    /// The active rule configuration.
    pub fn config(&self) -> AnalyzerConfig {
        self.config
    }

    /// The sentiment lexicon in use.
    pub fn lexicon(&self) -> &SentimentLexicon {
        self.lexicon
    }

    /// Analyzes one parsed sentence into sentiment assignments.
    pub fn analyze(&self, sentence: &AnalyzedSentence) -> Vec<SentimentAssignment> {
        let mut out = Vec::new();
        for clause in &sentence.analysis.clauses {
            let clause_assignments = self.analyze_clause(sentence, clause);
            // Contrast rule: a leading "unlike"/"like"/"as" PP mirrors the
            // sentiment assigned to this clause's subject.
            if self.config.contrast {
                for (prep, pp_chunk) in &clause.leading_pps {
                    if let Some(mirrored) = self.contrast_assignment(
                        sentence,
                        clause,
                        &clause_assignments,
                        prep,
                        *pp_chunk,
                    ) {
                        out.push(mirrored);
                    }
                }
            }
            // Comparative rule: "X is better than Y" — the complement's
            // comparative polarity also assigns its opposite to the
            // than-phrase.
            if self.config.contrast {
                if let Some(comp) =
                    self.comparative_assignment(sentence, clause, &clause_assignments)
                {
                    out.push(comp);
                }
            }
            out.extend(clause_assignments);
        }
        // Attributive rule: sentiment premodifiers inside any NP assign to
        // that NP's head region ("the excellent camera").
        if self.config.attributive {
            out.extend(self.attributive_assignments(sentence));
        }
        out
    }

    /// Pattern-based analysis of one clause.
    fn analyze_clause(
        &self,
        sentence: &AnalyzedSentence,
        clause: &Clause,
    ) -> Vec<SentimentAssignment> {
        let Some(predicate) = &clause.predicate else {
            return Vec::new();
        };
        // Existential clauses bypass the pattern database: "There is a lack
        // of non-memory Memory Sticks" directs the complement's sentiment
        // at the complement's own PP contents.
        if self.config.existential {
            if let Some(a) = self.existential_assignment(sentence, clause) {
                return vec![a];
            }
        }
        let mut candidates: Vec<&SentimentPattern> = self
            .patterns
            .patterns_for(&predicate.lemma)
            .iter()
            .collect();
        candidates.sort_by_key(|p| std::cmp::Reverse(p.specificity()));
        for pattern in candidates {
            let Some(target_ranges) = self.resolve_target(sentence, clause, pattern) else {
                continue;
            };
            let polarity = match &pattern.assignment {
                Assignment::Fixed(p) => *p,
                Assignment::Transfer {
                    source,
                    source_preps,
                    invert,
                } => {
                    let Some(source_pol) =
                        self.source_polarity(sentence, clause, *source, source_preps.as_deref())
                    else {
                        continue; // source component absent: try next pattern
                    };
                    source_pol.reversed_if(*invert)
                }
            };
            let polarity = polarity.reversed_if(self.config.negation && clause.negated);
            if polarity == Polarity::Neutral {
                // structure matched but carries no sentiment; the paper's
                // miner reports nothing for this clause
                return Vec::new();
            }
            return vec![SentimentAssignment {
                ranges: target_ranges,
                polarity,
                evidence: Evidence::Pattern {
                    predicate: predicate.lemma.clone(),
                    target: pattern.target,
                },
            }];
        }
        Vec::new()
    }

    /// Token ranges of a pattern's target component, if present.
    fn resolve_target(
        &self,
        sentence: &AnalyzedSentence,
        clause: &Clause,
        pattern: &SentimentPattern,
    ) -> Option<Vec<(usize, usize)>> {
        match pattern.target {
            Component::SP => {
                let subject = clause.subject?;
                // coordinated subjects share the assignment:
                // "the lens and the battery are great"
                let mut ranges: Vec<(usize, usize)> = coordinated_nps(sentence, clause, subject)
                    .into_iter()
                    .map(|c| chunk_range(&sentence.chunks[c]))
                    .collect();
                for (_, pp) in &clause.subject_pps {
                    ranges.push(chunk_range(&sentence.chunks[*pp]));
                }
                Some(ranges)
            }
            Component::OP => clause.object.map(|c| {
                coordinated_nps(sentence, clause, c)
                    .into_iter()
                    .map(|c| chunk_range(&sentence.chunks[c]))
                    .collect()
            }),
            Component::PP => {
                let (_, pp) = self.find_pp(clause, pattern.target_preps.as_deref())?;
                Some(vec![chunk_range(&sentence.chunks[pp])])
            }
            Component::CP | Component::MP => None, // not assignable targets
        }
    }

    /// Polarity of a source component, or None when the component is
    /// absent from the clause.
    fn source_polarity(
        &self,
        sentence: &AnalyzedSentence,
        clause: &Clause,
        source: Component,
        source_preps: Option<&[String]>,
    ) -> Option<Polarity> {
        match source {
            Component::SP => {
                let subject = clause.subject?;
                Some(self.range_polarity(sentence, chunk_range(&sentence.chunks[subject])))
            }
            Component::OP => {
                let object = clause.object?;
                // object plus its trailing PPs ("a lack of X" spans both)
                Some(self.range_polarity(sentence, chunk_range(&sentence.chunks[object])))
            }
            Component::CP => {
                let complement = clause.complement?;
                Some(self.range_polarity(sentence, chunk_range(&sentence.chunks[complement])))
            }
            Component::PP => {
                let (_, pp) = self.find_pp(clause, source_preps)?;
                Some(self.range_polarity(sentence, chunk_range(&sentence.chunks[pp])))
            }
            Component::MP => {
                let predicate = clause.predicate.as_ref()?;
                let vp = &sentence.chunks[predicate.chunk];
                Some(manner_polarity(sentence, (vp.start, vp.end), self.lexicon))
            }
        }
    }

    /// First post-verbal PP matching the preposition constraint.
    fn find_pp<'c>(
        &self,
        clause: &'c Clause,
        preps: Option<&[String]>,
    ) -> Option<(&'c str, usize)> {
        clause
            .pps
            .iter()
            .find(|(prep, _)| preps.is_none_or(|ps| ps.iter().any(|p| p == prep)))
            .map(|(prep, ci)| (prep.as_str(), *ci))
    }

    fn range_polarity(&self, sentence: &AnalyzedSentence, range: (usize, usize)) -> Polarity {
        phrase_polarity(sentence, range, self.lexicon)
    }

    /// Existential "there be X ..." → sentiment of X directed at X's PPs
    /// (and X itself).
    fn existential_assignment(
        &self,
        sentence: &AnalyzedSentence,
        clause: &Clause,
    ) -> Option<SentimentAssignment> {
        let predicate = clause.predicate.as_ref()?;
        if predicate.lemma != "be" {
            return None;
        }
        let subject = clause.subject?;
        let subject_chunk = &sentence.chunks[subject];
        let is_existential =
            subject_chunk.len() == 1 && sentence.tags[subject_chunk.start] == PosTag::EX;
        if !is_existential {
            return None;
        }
        // the existential's content may be split between a predicate
        // nominal and a stray complement ("a real lack" + "of polish"):
        // take the first sentiment-bearing piece
        let content = [clause.complement, clause.object]
            .into_iter()
            .flatten()
            .find(|&c| {
                self.range_polarity(sentence, chunk_range(&sentence.chunks[c])) != Polarity::Neutral
            })?;
        let content_pol = self.range_polarity(sentence, chunk_range(&sentence.chunks[content]));
        let mut ranges = vec![chunk_range(&sentence.chunks[content])];
        for c in [clause.complement, clause.object].into_iter().flatten() {
            let r = chunk_range(&sentence.chunks[c]);
            if !ranges.contains(&r) {
                ranges.push(r);
            }
        }
        for (_, pp) in &clause.pps {
            ranges.push(chunk_range(&sentence.chunks[*pp]));
        }
        Some(SentimentAssignment {
            ranges,
            polarity: content_pol.reversed_if(clause.negated),
            evidence: Evidence::Existential,
        })
    }

    /// "X is better than Y": when the clause assigned a comparative
    /// complement's polarity to its subject and a than-PP follows, the
    /// than-phrase receives the opposite polarity.
    fn comparative_assignment(
        &self,
        sentence: &AnalyzedSentence,
        clause: &Clause,
        clause_assignments: &[SentimentAssignment],
    ) -> Option<SentimentAssignment> {
        let complement = clause.complement?;
        let comp_chunk = &sentence.chunks[complement];
        let is_comparative = (comp_chunk.start..comp_chunk.end).any(|i| {
            matches!(sentence.tags[i], PosTag::JJR | PosTag::RBR)
                || matches!(sentence.tokens[i].lower().as_str(), "more" | "less")
        });
        if !is_comparative {
            return None;
        }
        let (_, than_pp) = clause.pps.iter().find(|(prep, _)| prep == "than")?;
        // the subject must have received a sentiment from this clause
        let subject = clause.subject?;
        let subject_range = chunk_range(&sentence.chunks[subject]);
        let subject_assignment = clause_assignments
            .iter()
            .find(|a| a.ranges.contains(&subject_range))?;
        Some(SentimentAssignment {
            ranges: vec![chunk_range(&sentence.chunks[*than_pp])],
            polarity: subject_assignment.polarity.reversed(),
            evidence: Evidence::Contrast {
                preposition: "than".to_string(),
            },
        })
    }

    /// Mirrors the clause's subject sentiment onto a contrastive leading
    /// PP: "unlike X" gets the opposite, "like"/"as" the same.
    fn contrast_assignment(
        &self,
        sentence: &AnalyzedSentence,
        clause: &Clause,
        clause_assignments: &[SentimentAssignment],
        prep: &str,
        pp_chunk: usize,
    ) -> Option<SentimentAssignment> {
        let invert = match prep {
            "unlike" => true,
            "like" | "as" | "with" => false,
            _ => return None,
        };
        // the clause must have assigned sentiment to its subject region
        let subject = clause.subject?;
        let subject_range = chunk_range(&sentence.chunks[subject]);
        let subject_assignment = clause_assignments
            .iter()
            .find(|a| a.ranges.contains(&subject_range))?;
        Some(SentimentAssignment {
            ranges: vec![chunk_range(&sentence.chunks[pp_chunk])],
            polarity: subject_assignment.polarity.reversed_if(invert),
            evidence: Evidence::Contrast {
                preposition: prep.to_string(),
            },
        })
    }

    /// Attributive adjectives: for every NP whose premodifiers carry
    /// sentiment, assign that polarity to the NP region.
    fn attributive_assignments(&self, sentence: &AnalyzedSentence) -> Vec<SentimentAssignment> {
        let mut out = Vec::new();
        for chunk in &sentence.chunks {
            let np_range = match chunk.kind {
                ChunkKind::NP => chunk_range(chunk),
                // a PP embeds its object NP
                ChunkKind::PP => match chunk.object {
                    Some(obj) => (obj, chunk.end),
                    None => continue,
                },
                _ => continue,
            };
            // premodifier region: everything before the head (last) noun
            let Some(head) = (np_range.0..np_range.1)
                .rev()
                .find(|&i| sentence.tags[i].is_noun())
            else {
                continue;
            };
            if head <= np_range.0 {
                continue;
            }
            let premod_polarity = phrase_polarity(sentence, (np_range.0, head), self.lexicon);
            if premod_polarity == Polarity::Neutral {
                continue;
            }
            out.push(SentimentAssignment {
                ranges: vec![np_range],
                polarity: premod_polarity,
                evidence: Evidence::Attributive,
            });
        }
        out
    }
}

/// The NP chunks coordinated with `anchor` inside the clause: walks both
/// directions across `CC`/comma connectors ("the lens and the battery",
/// "the lens, the menu and the strap").
fn coordinated_nps(sentence: &AnalyzedSentence, clause: &Clause, anchor: usize) -> Vec<usize> {
    let is_connector = |ci: usize| -> bool {
        let c = &sentence.chunks[ci];
        c.kind == ChunkKind::Other
            && (sentence.tags[c.start] == PosTag::CC || sentence.tokens[c.start].text == ",")
    };
    let is_np = |ci: usize| sentence.chunks[ci].kind == ChunkKind::NP;
    let mut out = vec![anchor];
    // backwards
    let mut ci = anchor;
    while ci >= clause.chunk_start + 2 && is_connector(ci - 1) && is_np(ci - 2) {
        ci -= 2;
        out.push(ci);
    }
    // forwards
    let mut ci = anchor;
    while ci + 2 < clause.chunk_end && is_connector(ci + 1) && is_np(ci + 2) {
        ci += 2;
        out.push(ci);
    }
    out.sort_unstable();
    out
}

/// Token range of a chunk.
fn chunk_range(chunk: &Chunk) -> (usize, usize) {
    (chunk.start, chunk.end)
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use wf_nlp::Pipeline;

    pub(crate) fn analyze(text: &str) -> (AnalyzedSentence, Vec<SentimentAssignment>) {
        let p = Pipeline::new();
        let s = p.analyze_sentence(text);
        let analyzer = SentimentAnalyzer::new();
        let a = analyzer.analyze(&s);
        (s, a)
    }

    /// Returns the polarity assigned to the region containing `word`, if
    /// any (structural evidence preferred over attributive).
    pub(crate) fn polarity_at(text: &str, word: &str) -> Option<Polarity> {
        let (s, assignments) = analyze(text);
        let token = s
            .tokens
            .iter()
            .position(|t| t.text.eq_ignore_ascii_case(word))
            .unwrap_or_else(|| panic!("{word} not in {text}"));
        let mut hits: Vec<&SentimentAssignment> = assignments
            .iter()
            .filter(|a| a.covers_token(token))
            .collect();
        hits.sort_by_key(|a| matches!(a.evidence, Evidence::Attributive));
        hits.first().map(|a| a.polarity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_nlp::Pipeline;

    fn analyze(text: &str) -> (AnalyzedSentence, Vec<SentimentAssignment>) {
        let p = Pipeline::new();
        let s = p.analyze_sentence(text);
        let analyzer = SentimentAnalyzer::new();
        let a = analyzer.analyze(&s);
        (s, a)
    }

    /// Returns the polarity assigned to the region containing `word`, if
    /// any (pattern/existential/contrast evidence preferred over
    /// attributive).
    fn polarity_at(text: &str, word: &str) -> Option<Polarity> {
        let (s, assignments) = analyze(text);
        let token = s
            .tokens
            .iter()
            .position(|t| t.text.eq_ignore_ascii_case(word))
            .unwrap_or_else(|| panic!("{word} not in {text}"));
        let mut hits: Vec<&SentimentAssignment> = assignments
            .iter()
            .filter(|a| a.covers_token(token))
            .collect();
        hits.sort_by_key(|a| matches!(a.evidence, Evidence::Attributive));
        hits.first().map(|a| a.polarity)
    }

    #[test]
    fn paper_take_op_sp() {
        // <"take" OP SP>: positive OP transfers to camera
        assert_eq!(
            polarity_at("This camera takes excellent pictures.", "camera"),
            Some(Polarity::Positive)
        );
    }

    #[test]
    fn paper_be_cp_sp() {
        assert_eq!(
            polarity_at("The colors are vibrant.", "colors"),
            Some(Polarity::Positive)
        );
    }

    #[test]
    fn paper_impress_pp() {
        assert_eq!(
            polarity_at("I am impressed by the flash capabilities.", "flash"),
            Some(Polarity::Positive)
        );
    }

    #[test]
    fn paper_offer_both_polarities() {
        assert_eq!(
            polarity_at("The company offers high quality products.", "company"),
            Some(Polarity::Positive)
        );
        assert_eq!(
            polarity_at("The company offers mediocre services.", "company"),
            Some(Polarity::Negative)
        );
    }

    #[test]
    fn paper_fails_to_meet() {
        assert_eq!(
            polarity_at(
                "The product fails to meet our quality expectations.",
                "product"
            ),
            Some(Polarity::Negative)
        );
    }

    #[test]
    fn negation_flips_pattern_polarity() {
        assert_eq!(
            polarity_at("The camera does not take good pictures.", "camera"),
            Some(Polarity::Negative)
        );
    }

    #[test]
    fn unlike_contrast() {
        let text = "Unlike the T series, the NR70 does not require an add-on adapter.";
        assert_eq!(polarity_at(text, "NR70"), Some(Polarity::Positive));
        assert_eq!(polarity_at(text, "series"), Some(Polarity::Negative));
    }

    #[test]
    fn as_with_contrast_copies() {
        let text = "As with every Sony PDA, the NR70 is equipped with Memory Stick expansion.";
        assert_eq!(polarity_at(text, "NR70"), Some(Polarity::Positive));
        assert_eq!(polarity_at(text, "Sony"), Some(Polarity::Positive));
    }

    #[test]
    fn existential_lack() {
        let text = "There is still a lack of non-memory Memory Sticks.";
        assert_eq!(polarity_at(text, "Sticks"), Some(Polarity::Negative));
    }

    #[test]
    fn neutral_sentence_assigns_nothing() {
        let (_, a) = analyze("The camera has a memory card slot.");
        assert!(
            a.iter().all(|x| x.polarity == Polarity::Neutral) || a.is_empty(),
            "{a:?}"
        );
    }

    #[test]
    fn unknown_predicate_assigns_nothing_structurally() {
        let (_, a) = analyze("The camera weighs three pounds.");
        assert!(
            a.iter()
                .all(|x| matches!(x.evidence, Evidence::Attributive)),
            "{a:?}"
        );
    }

    #[test]
    fn attributive_adjective() {
        assert_eq!(
            polarity_at("I returned the defective camera yesterday.", "camera"),
            Some(Polarity::Negative)
        );
    }

    #[test]
    fn event_verb_subject_polarity() {
        assert_eq!(
            polarity_at("The battery drains quickly.", "battery"),
            Some(Polarity::Negative)
        );
        assert_eq!(
            polarity_at("The autofocus excels in low light.", "autofocus"),
            Some(Polarity::Positive)
        );
    }

    #[test]
    fn manner_pattern() {
        assert_eq!(
            polarity_at("The lens performs beautifully.", "lens"),
            Some(Polarity::Positive)
        );
        assert_eq!(
            polarity_at("The software runs poorly.", "software"),
            Some(Polarity::Negative)
        );
    }

    #[test]
    fn subject_attached_pp_shares_subject_sentiment() {
        let text = "The Memory Stick support in the NR70 series is well implemented.";
        // "well implemented" → implement MP? no pattern for implement;
        // falls back: nothing or attributive. Accept either the positive
        // assignment or none, but never a negative.
        let p = polarity_at(text, "NR70");
        assert_ne!(p, Some(Polarity::Negative));
    }

    #[test]
    fn coordinated_clauses_assign_independently() {
        let text = "The lens is sharp but the battery is terrible.";
        assert_eq!(polarity_at(text, "lens"), Some(Polarity::Positive));
        assert_eq!(polarity_at(text, "battery"), Some(Polarity::Negative));
    }

    #[test]
    fn love_assigns_to_object() {
        assert_eq!(
            polarity_at("I love the zoom lens.", "zoom"),
            Some(Polarity::Positive)
        );
        assert_eq!(
            polarity_at("I hate the menu system.", "menu"),
            Some(Polarity::Negative)
        );
    }
}

#[cfg(test)]
mod comparative_tests {
    use super::*;
    use crate::analyzer::tests_support::polarity_at;

    #[test]
    fn better_than_assigns_both_sides() {
        let text = "The NR70 is better than the T300.";
        assert_eq!(
            polarity_at(text, "NR70"),
            Some(wf_types::Polarity::Positive)
        );
        assert_eq!(
            polarity_at(text, "T300"),
            Some(wf_types::Polarity::Negative)
        );
    }

    #[test]
    fn worse_than_assigns_both_sides() {
        let text = "The NR70 is worse than the T300.";
        assert_eq!(
            polarity_at(text, "NR70"),
            Some(wf_types::Polarity::Negative)
        );
        assert_eq!(
            polarity_at(text, "T300"),
            Some(wf_types::Polarity::Positive)
        );
    }

    #[test]
    fn less_reliable_than() {
        let text = "The NR70 is less reliable than the T300.";
        assert_eq!(
            polarity_at(text, "NR70"),
            Some(wf_types::Polarity::Negative)
        );
        assert_eq!(
            polarity_at(text, "T300"),
            Some(wf_types::Polarity::Positive)
        );
    }

    #[test]
    fn comparative_without_than_only_affects_subject() {
        let text = "The NR70 is better.";
        assert_eq!(
            polarity_at(text, "NR70"),
            Some(wf_types::Polarity::Positive)
        );
    }

    #[test]
    fn comparative_disabled_with_contrast_rule() {
        use wf_nlp::Pipeline;
        let analyzer = SentimentAnalyzer::with_config(AnalyzerConfig {
            contrast: false,
            ..AnalyzerConfig::default()
        });
        let s = Pipeline::new().analyze_sentence("The NR70 is better than the T300.");
        let assignments = analyzer.analyze(&s);
        // the than-phrase must receive nothing when the rule is off
        let t300 = s.tokens.iter().position(|t| t.text == "T300").unwrap();
        assert!(assignments.iter().all(|a| !a.covers_token(t300)));
    }
}

#[cfg(test)]
mod coordination_tests {
    use crate::analyzer::tests_support::polarity_at;
    use wf_types::Polarity;

    #[test]
    fn coordinated_subjects_share_sentiment() {
        let text = "The lens and the battery are excellent.";
        assert_eq!(polarity_at(text, "lens"), Some(Polarity::Positive));
        assert_eq!(polarity_at(text, "battery"), Some(Polarity::Positive));
    }

    #[test]
    fn three_way_subject_coordination() {
        let text = "The lens, the menu and the strap are terrible.";
        for word in ["lens", "menu", "strap"] {
            assert_eq!(polarity_at(text, word), Some(Polarity::Negative), "{word}");
        }
    }

    #[test]
    fn coordinated_objects_share_sentiment() {
        let text = "I love the lens and the zoom.";
        assert_eq!(polarity_at(text, "lens"), Some(Polarity::Positive));
        assert_eq!(polarity_at(text, "zoom"), Some(Polarity::Positive));
    }

    #[test]
    fn coordination_does_not_cross_clause_boundaries() {
        // "but" opens a new clause; the first clause's positive assignment
        // must not leak to the second subject
        let text = "The lens is excellent but the battery is terrible.";
        assert_eq!(polarity_at(text, "lens"), Some(Polarity::Positive));
        assert_eq!(polarity_at(text, "battery"), Some(Polarity::Negative));
    }
}

//! Output records of the sentiment miner.

use serde::{Deserialize, Serialize};
use wf_types::{Polarity, Span, SynsetId};

/// How strongly a record's evidence binds the sentiment to the subject.
/// Lower is stronger; used to pick the dominant record for a mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Hash)]
pub enum EvidenceKind {
    /// A sentiment pattern of the predicate matched (relationship analysis).
    Pattern,
    /// Existential clause rule.
    Existential,
    /// Contrastive leading PP.
    Contrast,
    /// Attributive adjectives inside the subject NP.
    Attributive,
    /// Subject mentioned, no sentiment found (neutral mention).
    None,
}

/// One (subject, sentiment) extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubjectSentiment {
    /// Canonical subject name (from the subject list, or the named entity
    /// surface form in query-time mode).
    pub subject: String,
    /// Synonym set, when the subject came from a predefined list.
    pub synset: Option<SynsetId>,
    /// Extracted polarity (Neutral = mention without sentiment).
    pub polarity: Polarity,
    /// Byte span of the containing sentence in the source text.
    pub sentence_span: Span,
    /// Byte span of the subject spot.
    pub spot_span: Span,
    /// Evidence class.
    pub evidence: EvidenceKind,
    /// Human-readable evidence detail ("pattern take/OP→SP").
    pub detail: String,
}

impl SubjectSentiment {
    /// True when the record carries sentiment.
    pub fn is_sentiment(&self) -> bool {
        self.polarity.is_sentiment()
    }
}

/// Combines all records for one (sentence, subject) mention into the
/// mention's dominant polarity: strongest evidence wins; at equal evidence
/// strength, conflicting polarities cancel to Neutral.
pub fn dominant_polarity(records: &[&SubjectSentiment]) -> Polarity {
    let best = records
        .iter()
        .filter(|r| r.is_sentiment())
        .map(|r| r.evidence)
        .min();
    let Some(best) = best else {
        return Polarity::Neutral;
    };
    let score: i32 = records
        .iter()
        .filter(|r| r.evidence == best)
        .map(|r| r.polarity.score())
        .sum();
    Polarity::from_score(score)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(polarity: Polarity, evidence: EvidenceKind) -> SubjectSentiment {
        SubjectSentiment {
            subject: "x".into(),
            synset: None,
            polarity,
            sentence_span: Span::new(0, 10),
            spot_span: Span::new(0, 1),
            evidence,
            detail: String::new(),
        }
    }

    #[test]
    fn pattern_evidence_beats_attributive() {
        let a = rec(Polarity::Negative, EvidenceKind::Pattern);
        let b = rec(Polarity::Positive, EvidenceKind::Attributive);
        assert_eq!(dominant_polarity(&[&a, &b]), Polarity::Negative);
    }

    #[test]
    fn equal_evidence_conflicts_cancel() {
        let a = rec(Polarity::Negative, EvidenceKind::Pattern);
        let b = rec(Polarity::Positive, EvidenceKind::Pattern);
        assert_eq!(dominant_polarity(&[&a, &b]), Polarity::Neutral);
    }

    #[test]
    fn all_neutral_is_neutral() {
        let a = rec(Polarity::Neutral, EvidenceKind::None);
        assert_eq!(dominant_polarity(&[&a]), Polarity::Neutral);
        assert_eq!(dominant_polarity(&[]), Polarity::Neutral);
    }

    #[test]
    fn majority_within_same_evidence() {
        let a = rec(Polarity::Positive, EvidenceKind::Pattern);
        let b = rec(Polarity::Positive, EvidenceKind::Pattern);
        let c = rec(Polarity::Negative, EvidenceKind::Pattern);
        assert_eq!(dominant_polarity(&[&a, &b, &c]), Polarity::Positive);
    }
}

//! Parse inspector: prints the tagged tokens, chunks and clause analysis
//! for a sentence — the quickest way to see what the shallow parser does.
//!
//! Run with: `cargo run -p wf-nlp --example dbg "Your sentence here."`

fn main() {
    let text = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "This camera takes excellent pictures.".into());
    let tokens = wf_nlp::tokenizer::tokenize(&text);
    let tags = wf_nlp::pos::PosTagger::new().tag_sentence(&tokens);
    for (t, g) in tokens.iter().zip(&tags) {
        print!("{}/{} ", t.text, g);
    }
    println!();
    let chunks = wf_nlp::chunk::chunk(&tokens, &tags);
    for c in &chunks {
        println!(
            "{:?} {:?} head={}",
            c.kind,
            c.text(&tokens),
            tokens[c.head].text
        );
    }
    let analysis = wf_nlp::clause::analyze_clauses(&tokens, &tags, &chunks);
    println!("{:#?}", analysis.clauses);
}

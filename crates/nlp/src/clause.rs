//! Clause-level analysis over chunks.
//!
//! Decomposes a chunked sentence into clauses and, per clause, the sentence
//! components the sentiment pattern database refers to: SP (subject phrase),
//! OP (object phrase), CP (complement/adjective phrase) and PP
//! (prepositional phrases with their prepositions), plus the predicate verb
//! and its negation state. This is the "semantic relationship analysis"
//! substrate of the paper's sentiment miner.

use crate::chunk::{Chunk, ChunkKind};
use crate::lemma::lemmatize_verb;
use crate::tags::PosTag;
use crate::tokenizer::Token;
use crate::view::{LoweredTokens, TokenAccess};

/// Negating adverbs/determiners per the paper: "not, no, never, hardly,
/// seldom, or little".
pub fn is_negation_word(lower: &str) -> bool {
    matches!(
        lower,
        "not"
            | "n't"
            | "n’t"
            | "no"
            | "never"
            | "hardly"
            | "seldom"
            | "little"
            | "barely"
            | "scarcely"
            | "rarely"
            | "neither"
            | "nor"
            | "without"
    )
}

/// Matrix verbs that negate their complement ("fails to meet ...").
fn is_negative_implicative(lemma: &str) -> bool {
    matches!(lemma, "fail" | "refuse" | "decline" | "neglect" | "cease")
}

/// The predicate of a clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Index of the VP chunk within the sentence's chunk list.
    pub chunk: usize,
    /// Lemma of the main verb (pattern-database key).
    pub lemma: String,
    /// Token index (within the sentence) of the main verb.
    pub head_token: usize,
    /// True for passive voice (be/get + past participle).
    pub passive: bool,
}

/// One clause: component chunk indices into the sentence's chunk list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Clause {
    /// Range of chunk indices `[start, end)` belonging to this clause.
    pub chunk_start: usize,
    pub chunk_end: usize,
    /// The predicate, when the clause has a verb group.
    pub predicate: Option<Predicate>,
    /// SP: subject NP chunk index.
    pub subject: Option<usize>,
    /// OP: object NP chunk index.
    pub object: Option<usize>,
    /// CP: complement ADJP (or predicate-nominal NP for copulas).
    pub complement: Option<usize>,
    /// PPs after the predicate: (lower-cased preposition, PP chunk index).
    pub pps: Vec<(String, usize)>,
    /// PPs attached between the subject and the predicate
    /// ("The support **in the NR70 series** is well implemented").
    pub subject_pps: Vec<(String, usize)>,
    /// PPs before the subject ("**Unlike the T series CLIEs,** the NR70 ...").
    pub leading_pps: Vec<(String, usize)>,
    /// True when the verb group is negated (negation adverb in the VP or a
    /// negative-implicative matrix verb).
    pub negated: bool,
    /// True when the clause opens with a relative pronoun; its subject is
    /// inherited from the previous clause's nearest NP.
    pub relative: bool,
}

/// Full clause analysis of one sentence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SentenceAnalysis {
    pub clauses: Vec<Clause>,
}

/// Splits chunk indices into clause boundaries and analyzes each clause
/// (compatibility wrapper over owned tokens).
pub fn analyze_clauses(tokens: &[Token], tags: &[PosTag], chunks: &[Chunk]) -> SentenceAnalysis {
    analyze_clause_tokens(&LoweredTokens::new(tokens), tags, chunks)
}

/// Clause analysis over any token view.
pub fn analyze_clause_tokens<T: TokenAccess>(
    tokens: &T,
    tags: &[PosTag],
    chunks: &[Chunk],
) -> SentenceAnalysis {
    let boundaries = clause_boundaries(tokens, tags, chunks);
    let mut clauses = Vec::new();
    for window in boundaries.windows(2) {
        let (start, end) = (window[0], window[1]);
        if start >= end {
            continue;
        }
        let mut clause = analyze_one(tokens, tags, chunks, start, end);
        // Relative clauses inherit the nearest NP before them as subject.
        if clause.relative && clause.subject.is_none() {
            clause.subject = (0..start)
                .rev()
                .find(|&ci| chunks[ci].kind == ChunkKind::NP || chunks[ci].kind == ChunkKind::PP);
        }
        clauses.push(clause);
    }
    SentenceAnalysis { clauses }
}

/// Chunk indices where clauses begin (always starts with 0, ends with
/// `chunks.len()`). A new clause starts at:
/// - a coordinating conjunction between two verb-bearing stretches,
/// - a relative pronoun (which/who/that-WDT),
/// - a subordinating conjunction heading its own subject+verb,
/// - a semicolon.
fn clause_boundaries<T: TokenAccess>(tokens: &T, tags: &[PosTag], chunks: &[Chunk]) -> Vec<usize> {
    let mut bounds = vec![0];
    let has_vp_in =
        |range: std::ops::Range<usize>| range.clone().any(|ci| chunks[ci].kind == ChunkKind::VP);
    for ci in 0..chunks.len() {
        let c = &chunks[ci];
        if c.kind != ChunkKind::Other {
            continue;
        }
        let tag = tags[c.start];
        let prev_bound = *bounds.last().expect("non-empty");
        let is_cc_split =
            tag == PosTag::CC && has_vp_in(prev_bound..ci) && has_vp_in(ci + 1..chunks.len());
        let is_relative = matches!(tag, PosTag::WDT | PosTag::WP);
        let is_semicolon = tokens.text(c.start) == ";";
        let is_subordinator =
            tag == PosTag::IN && crate::chunk::is_subordinator(tokens.lower(c.start));
        // a comma separates clauses only when finite material sits on both
        // sides and an NP opens the right side ("the lens is sharp, the
        // menu is confusing"); appositive commas fail the VP tests
        let is_comma_split = tokens.text(c.start) == ","
            && has_vp_in(prev_bound..ci)
            && chunks.get(ci + 1).is_some_and(|c| c.kind == ChunkKind::NP)
            && has_vp_in(ci + 1..chunks.len());
        if is_cc_split || is_relative || is_semicolon || is_subordinator || is_comma_split {
            bounds.push(if is_relative { ci } else { ci + 1 });
        }
    }
    bounds.push(chunks.len());
    bounds.dedup();
    bounds
}

/// Analyzes the clause spanning chunks `[start, end)`.
fn analyze_one<T: TokenAccess>(
    tokens: &T,
    tags: &[PosTag],
    chunks: &[Chunk],
    start: usize,
    end: usize,
) -> Clause {
    let mut clause = Clause {
        chunk_start: start,
        chunk_end: end,
        ..Clause::default()
    };
    clause.relative = chunks[start].kind == ChunkKind::Other
        && matches!(tags[chunks[start].start], PosTag::WDT | PosTag::WP);

    // Predicate: first VP chunk in the clause.
    let vp_index = (start..end).find(|&ci| chunks[ci].kind == ChunkKind::VP);
    let Some(vp) = vp_index else {
        return clause;
    };
    let vp_chunk = &chunks[vp];

    // Main verb: the VP head (last verb token). Passive when a be/get form
    // precedes a final past participle inside the VP.
    let head_token = vp_chunk.head;
    let lemma = lemmatize_verb(tokens.lower(head_token));
    let mut passive = false;
    if tags[head_token] == PosTag::VBN {
        passive = (vp_chunk.start..head_token).any(|ti| {
            tags[ti].is_verb() && matches!(lemmatize_verb(tokens.lower(ti)).as_str(), "be" | "get")
        });
    }

    // Negation: negating adverb inside the VP, or a negative-implicative
    // matrix verb before the head ("fails to meet").
    let mut negated = (vp_chunk.start..vp_chunk.end)
        .any(|ti| tags[ti].is_adverb() && is_negation_word(tokens.lower(ti)));
    for (ti, tag) in tags
        .iter()
        .enumerate()
        .take(head_token)
        .skip(vp_chunk.start)
    {
        if tag.is_verb() && is_negative_implicative(&lemmatize_verb(tokens.lower(ti))) {
            negated = !negated;
        }
    }

    clause.predicate = Some(Predicate {
        chunk: vp,
        lemma,
        head_token,
        passive,
    });
    clause.negated = negated;

    // Subject: nearest NP before the VP; PPs between it and the VP are
    // subject-attached; PPs before the subject are leading.
    let mut subject = None;
    for ci in (start..vp).rev() {
        match chunks[ci].kind {
            ChunkKind::NP if subject.is_none() => subject = Some(ci),
            ChunkKind::PP => {
                let prep = tokens.lower(chunks[ci].head).to_string();
                if subject.is_none() {
                    clause.subject_pps.push((prep, ci));
                } else {
                    clause.leading_pps.push((prep, ci));
                }
            }
            _ => {}
        }
    }
    clause.subject_pps.reverse();
    clause.leading_pps.reverse();
    clause.subject = subject;

    // Object / complement / trailing PPs.
    for (ci, chunk) in chunks.iter().enumerate().take(end).skip(vp + 1) {
        match chunk.kind {
            ChunkKind::NP if clause.object.is_none() => clause.object = Some(ci),
            ChunkKind::ADJP if clause.complement.is_none() => clause.complement = Some(ci),
            ChunkKind::PP => {
                let prep = tokens.lower(chunk.head).to_string();
                clause.pps.push((prep, ci));
            }
            ChunkKind::VP => break, // a second verb group ends this clause's scope
            _ => {}
        }
    }

    // Copula predicate nominal: "It is a great camera" — the object NP
    // functions as the complement.
    if clause.complement.is_none()
        && clause.predicate.as_ref().map(|p| p.lemma.as_str()) == Some("be")
    {
        if let Some(obj) = clause.object.take() {
            clause.complement = Some(obj);
        }
    }

    // "no" determiner in the object NP negates the clause ("offers no
    // support").
    if let Some(obj) = clause.object {
        let c = &chunks[obj];
        if (c.start..c.end).any(|ti| tags[ti] == PosTag::DT && tokens.lower(ti) == "no") {
            clause.negated = !clause.negated;
        }
    }

    clause
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk;
    use crate::pos::PosTagger;
    use crate::tokenizer::tokenize;

    struct Parsed {
        tokens: Vec<Token>,
        chunks: Vec<Chunk>,
        analysis: SentenceAnalysis,
    }

    fn parse(text: &str) -> Parsed {
        let tokens = tokenize(text);
        let tags = PosTagger::new().tag_sentence(&tokens);
        let chunks = chunk(&tokens, &tags);
        let analysis = analyze_clauses(&tokens, &tags, &chunks);
        Parsed {
            tokens,
            chunks,
            analysis,
        }
    }

    fn chunk_text(p: &Parsed, ci: usize) -> String {
        p.chunks[ci].text(&p.tokens)
    }

    #[test]
    fn simple_svo_clause() {
        let p = parse("This camera takes excellent pictures.");
        assert_eq!(p.analysis.clauses.len(), 1);
        let c = &p.analysis.clauses[0];
        let pred = c.predicate.as_ref().unwrap();
        assert_eq!(pred.lemma, "take");
        assert!(!pred.passive);
        assert_eq!(chunk_text(&p, c.subject.unwrap()), "This camera");
        assert_eq!(chunk_text(&p, c.object.unwrap()), "excellent pictures");
        assert!(!c.negated);
    }

    #[test]
    fn copula_complement() {
        let p = parse("The colors are vibrant.");
        let c = &p.analysis.clauses[0];
        assert_eq!(c.predicate.as_ref().unwrap().lemma, "be");
        assert_eq!(chunk_text(&p, c.subject.unwrap()), "The colors");
        assert_eq!(chunk_text(&p, c.complement.unwrap()), "vibrant");
        assert!(c.object.is_none());
    }

    #[test]
    fn passive_with_agent_pp() {
        let p = parse("I am impressed by the picture quality.");
        let c = &p.analysis.clauses[0];
        let pred = c.predicate.as_ref().unwrap();
        assert_eq!(pred.lemma, "impress");
        assert!(pred.passive);
        assert_eq!(c.pps.len(), 1);
        assert_eq!(c.pps[0].0, "by");
        assert!(chunk_text(&p, c.pps[0].1).contains("picture quality"));
    }

    #[test]
    fn negated_clause() {
        let p = parse("The NR70 does not require an add-on adapter.");
        let c = &p.analysis.clauses[0];
        assert!(c.negated);
        assert_eq!(c.predicate.as_ref().unwrap().lemma, "require");
        assert_eq!(chunk_text(&p, c.subject.unwrap()), "The NR70");
    }

    #[test]
    fn leading_contrast_pp() {
        let p = parse("Unlike the T series CLIEs, the NR70 works well.");
        let c = &p.analysis.clauses[0];
        assert_eq!(c.leading_pps.len(), 1);
        assert_eq!(c.leading_pps[0].0, "unlike");
        assert!(chunk_text(&p, c.leading_pps[0].1).contains("T series CLIEs"));
        assert_eq!(chunk_text(&p, c.subject.unwrap()), "the NR70");
    }

    #[test]
    fn subject_attached_pp() {
        let p = parse("The Memory Stick support in the NR70 series is well implemented.");
        let c = &p.analysis.clauses[0];
        assert_eq!(
            chunk_text(&p, c.subject.unwrap()),
            "The Memory Stick support"
        );
        assert_eq!(c.subject_pps.len(), 1);
        assert_eq!(c.subject_pps[0].0, "in");
        let pred = c.predicate.as_ref().unwrap();
        assert_eq!(pred.lemma, "implement");
        assert!(pred.passive);
    }

    #[test]
    fn coordinated_clauses_split() {
        let p = parse("The lens is sharp but the battery drains quickly.");
        assert_eq!(p.analysis.clauses.len(), 2);
        assert_eq!(
            p.analysis.clauses[0].predicate.as_ref().unwrap().lemma,
            "be"
        );
        assert_eq!(
            p.analysis.clauses[1].predicate.as_ref().unwrap().lemma,
            "drain"
        );
        assert_eq!(
            chunk_text(&p, p.analysis.clauses[1].subject.unwrap()),
            "the battery"
        );
    }

    #[test]
    fn relative_clause_inherits_antecedent() {
        let p = parse("It has a zoom lens which performs beautifully.");
        assert_eq!(p.analysis.clauses.len(), 2);
        let rel = &p.analysis.clauses[1];
        assert!(rel.relative);
        assert_eq!(rel.predicate.as_ref().unwrap().lemma, "perform");
        assert!(chunk_text(&p, rel.subject.unwrap()).contains("zoom lens"));
    }

    #[test]
    fn negative_implicative_matrix_verb() {
        let p = parse("The product fails to meet our quality expectations.");
        let c = &p.analysis.clauses[0];
        assert_eq!(c.predicate.as_ref().unwrap().lemma, "meet");
        assert!(c.negated, "fail-to flips polarity");
    }

    #[test]
    fn object_no_determiner_negates() {
        let p = parse("The company offers no support.");
        let c = &p.analysis.clauses[0];
        assert!(c.negated);
        assert_eq!(c.predicate.as_ref().unwrap().lemma, "offer");
    }

    #[test]
    fn verbless_fragment_has_no_predicate() {
        let p = parse("What a camera!");
        assert!(p
            .analysis
            .clauses
            .iter()
            .all(|c| c.predicate.is_none() || c.predicate.is_some()));
        // must not panic; fragment may yield zero or predicate-less clauses
    }

    #[test]
    fn trans_verb_offer_has_subject_and_object() {
        let p = parse("The company offers mediocre services.");
        let c = &p.analysis.clauses[0];
        assert_eq!(c.predicate.as_ref().unwrap().lemma, "offer");
        assert_eq!(chunk_text(&p, c.subject.unwrap()), "The company");
        assert_eq!(chunk_text(&p, c.object.unwrap()), "mediocre services");
    }
}

//! Frozen seed reference implementation of the NLP chain.
//!
//! This module is a verbatim copy of the pre-optimization (per-token
//! `String`, one-document-at-a-time) tokenizer, sentence splitter, POS
//! tagger, chunker, clause analyzer and entity spotter. It exists so the
//! differential-equivalence harness (`tests/nlp_equivalence.rs`) can run
//! every input through both this path and the zero-copy batched path and
//! assert identical output. **Do not "optimize" or otherwise modify the
//! logic here** — it is the oracle. Shared *data* (the tag dictionary) and
//! the lemmatizer are reused because their outputs are pinned by their own
//! unit tests; all control flow is duplicated.

use crate::chunk::{is_subordinator, Chunk, ChunkKind};
use crate::clause::{is_negation_word, Clause, Predicate, SentenceAnalysis};
use crate::dict::TagDictionary;
use crate::lemma::lemmatize_verb;
use crate::ner::NamedEntity;
use crate::sentence::Sentence;
use crate::tags::PosTag;
use crate::tokenizer::{Token, TokenKind};
use crate::AnalyzedSentence;
use wf_types::Span;

/// Seed pipeline: tokenize → split → per-sentence clone → tag → chunk →
/// clause-analyze. Mirrors the seed `Pipeline::analyze` exactly.
pub fn analyze(text: &str) -> Vec<AnalyzedSentence> {
    let tokens = tokenize(text);
    let sentences = split_sentences(&tokens);
    sentences
        .iter()
        .map(|s| {
            let toks: Vec<Token> = s.tokens(&tokens).to_vec();
            let tags = tag_sentence(&toks);
            let chunks = chunk(&toks, &tags);
            let analysis = analyze_clauses(&toks, &tags, &chunks);
            AnalyzedSentence {
                span: s.span,
                tokens: toks,
                tags,
                chunks,
                analysis,
            }
        })
        .collect()
}

/// Seed `Pipeline::named_entities`: a second full tokenization pass.
pub fn named_entities(text: &str) -> Vec<NamedEntity> {
    let tokens = tokenize(text);
    let sentences = split_sentences(&tokens);
    let mut out = Vec::new();
    for s in &sentences {
        out.extend(spot_entities(&tokens, s));
    }
    out
}

// ---------------------------------------------------------------- tokenizer

/// Seed tokenizer (per-token owned `String`s).
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = text[i..].chars().next().expect("in-bounds char");
        if c.is_whitespace() {
            i += c.len_utf8();
            continue;
        }
        if c.is_alphanumeric() {
            let start = i;
            let mut end = i;
            let mut has_alpha = false;
            let mut has_digit = false;
            let mut chars = text[i..].char_indices().peekable();
            while let Some((off, ch)) = chars.next() {
                let abs = i + off;
                if ch.is_alphanumeric() {
                    has_alpha |= ch.is_alphabetic();
                    has_digit |= ch.is_ascii_digit();
                    end = abs + ch.len_utf8();
                } else if (ch == '-' || ch == '\'' || ch == '’')
                    && end == abs
                    && abs > start
                    && chars
                        .peek()
                        .is_some_and(|&(_, next)| next.is_alphanumeric())
                {
                    end = abs + ch.len_utf8();
                } else if ch == '.'
                    && end == abs
                    && has_digit
                    && !has_alpha
                    && chars.peek().is_some_and(|&(_, next)| next.is_ascii_digit())
                {
                    end = abs + 1;
                } else {
                    break;
                }
            }
            let mut surface = &text[start..end];
            while surface.ends_with('-') || surface.ends_with('\'') || surface.ends_with('’') {
                end -= surface.chars().next_back().expect("non-empty").len_utf8();
                surface = &text[start..end];
            }
            split_clitics(text, start, end, has_alpha, &mut tokens);
            i = end;
        } else {
            let end = i + c.len_utf8();
            tokens.push(Token {
                text: text[i..end].to_string(),
                span: Span::new(i, end),
                kind: TokenKind::Punct,
            });
            i = end;
        }
    }
    tokens
}

fn split_clitics(text: &str, start: usize, end: usize, has_alpha: bool, out: &mut Vec<Token>) {
    let surface = &text[start..end];
    let lower = surface.to_lowercase();
    const CLITICS: &[&str] = &["n't", "n’t", "'s", "’s", "'re", "'ve", "'ll", "'d", "'m"];
    for clitic in CLITICS {
        if lower.ends_with(clitic) && lower.len() > clitic.len() {
            let split = end - clitic.len();
            push_word(text, start, split, has_alpha, out);
            out.push(Token {
                text: text[split..end].to_string(),
                span: Span::new(split, end),
                kind: TokenKind::Word,
            });
            return;
        }
    }
    push_word(text, start, end, has_alpha, out);
}

fn push_word(text: &str, start: usize, end: usize, has_alpha: bool, out: &mut Vec<Token>) {
    if start == end {
        return;
    }
    let kind = if has_alpha {
        TokenKind::Word
    } else {
        TokenKind::Number
    };
    out.push(Token {
        text: text[start..end].to_string(),
        span: Span::new(start, end),
        kind,
    });
}

// ----------------------------------------------------------------- sentence

const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc", "inc", "corp", "co", "ltd",
    "e.g", "i.e", "u.s", "u.k", "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept",
    "oct", "nov", "dec", "no", "vol", "fig", "approx", "dept", "est",
];

fn is_abbreviation(word: &str) -> bool {
    let lower = word.to_lowercase();
    ABBREVIATIONS.contains(&lower.as_str())
        || (word.len() == 1 && word.chars().all(|c| c.is_alphabetic()))
}

/// Seed sentence splitter.
pub fn split_sentences(tokens: &[Token]) -> Vec<Sentence> {
    let mut sentences = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        let ends = match tok.text.as_str() {
            "!" | "?" => true,
            "." => {
                let prev_is_abbrev = i > 0
                    && tokens[i - 1].kind == TokenKind::Word
                    && is_abbreviation(&tokens[i - 1].text)
                    && tokens[i - 1].span.end == tok.span.start;
                !prev_is_abbrev
            }
            _ => false,
        };
        if ends {
            let mut end = i + 1;
            while end < tokens.len()
                && matches!(
                    tokens[end].text.as_str(),
                    "\"" | "'" | ")" | "]" | "”" | "’" | "." | "!" | "?"
                )
            {
                end += 1;
            }
            push_sentence(tokens, start, end, &mut sentences);
            start = end;
            i = end;
        } else {
            i += 1;
        }
    }
    push_sentence(tokens, start, tokens.len(), &mut sentences);
    sentences
}

fn push_sentence(tokens: &[Token], start: usize, end: usize, out: &mut Vec<Sentence>) {
    if start >= end {
        return;
    }
    let span = Span::new(tokens[start].span.start, tokens[end - 1].span.end);
    out.push(Sentence {
        start_token: start,
        end_token: end,
        span,
    });
}

// ---------------------------------------------------------------------- pos

/// Seed POS tagger (allocates a fresh lowercase `String` per rule lookup).
pub fn tag_sentence(tokens: &[Token]) -> Vec<PosTag> {
    let dict = TagDictionary::global();
    let mut tags: Vec<PosTag> = tokens
        .iter()
        .enumerate()
        .map(|(i, t)| initial_tag(dict, t, i == 0))
        .collect();
    apply_contextual_rules(dict, tokens, &mut tags);
    tags
}

fn initial_tag(dict: &TagDictionary, token: &Token, sentence_initial: bool) -> PosTag {
    match token.kind {
        TokenKind::Number => return PosTag::CD,
        TokenKind::Punct => return punct_tag(&token.text),
        TokenKind::Word => {}
    }
    let lower = token.lower();
    if let Some(tags) = dict.lookup(&lower) {
        return tags[0];
    }
    if token.is_capitalized() && !sentence_initial {
        return PosTag::NNP;
    }
    if sentence_initial && token.is_all_caps() && token.text.len() > 1 {
        return PosTag::NNP;
    }
    guess_by_suffix(&lower)
}

fn apply_contextual_rules(dict: &TagDictionary, tokens: &[Token], tags: &mut [PosTag]) {
    for _pass in 0..2 {
        for i in 0..tokens.len() {
            let lower = tokens[i].lower();
            let prev = previous_non_adverb(tags, i);
            let cur = tags[i];

            if let Some(p) = prev {
                if matches!(p, PosTag::DT | PosTag::PRPS | PosTag::JJ | PosTag::CD) && cur.is_verb()
                {
                    if dict.allows(&lower, PosTag::NN)
                        && dict.lookup(&lower).is_some_and(|t| t.contains(&PosTag::NN))
                    {
                        tags[i] = PosTag::NN;
                        continue;
                    }
                    if dict
                        .lookup(&lower)
                        .is_some_and(|t| t.contains(&PosTag::NNS))
                    {
                        tags[i] = PosTag::NNS;
                        continue;
                    }
                }
            }

            if let Some(p) = prev {
                if matches!(p, PosTag::TO | PosTag::MD)
                    && (cur.is_verb() || cur.is_noun())
                    && dict.lookup(&lower).is_some_and(|t| t.contains(&PosTag::VB))
                {
                    tags[i] = PosTag::VB;
                    continue;
                }
            }

            if matches!(cur, PosTag::NN | PosTag::NNS)
                && lower.ends_with('s')
                && !lower.ends_with("ss")
            {
                let prev_is_subject = prev.is_some_and(|p| {
                    matches!(p, PosTag::PRP | PosTag::NN | PosTag::NNS | PosTag::NNP)
                });
                let next_opens_np = tags.get(i + 1).is_some_and(|&n| {
                    matches!(n, PosTag::DT | PosTag::PRPS | PosTag::CD)
                        || n.is_adjective()
                        || n.is_noun()
                        || n.is_adverb()
                });
                let allowed = match dict.lookup(&lower) {
                    Some(t) => t.contains(&PosTag::VBZ),
                    None => true,
                };
                if prev_is_subject && next_opens_np && allowed {
                    tags[i] = PosTag::VBZ;
                    continue;
                }
            }

            if cur == PosTag::NN
                && dict
                    .lookup(&lower)
                    .is_some_and(|t| t.contains(&PosTag::VBP))
            {
                let prev_is_plural_subject =
                    prev.is_some_and(|p| matches!(p, PosTag::PRP | PosTag::NNS | PosTag::NNPS));
                if prev_is_plural_subject {
                    tags[i] = PosTag::VBP;
                    continue;
                }
            }

            if lower == "that" && prev.is_some_and(|p| p.is_verb()) {
                tags[i] = PosTag::IN;
                continue;
            }

            if matches!(cur, PosTag::VBD | PosTag::VBN)
                && dict.allows(&lower, PosTag::VBD)
                && dict.allows(&lower, PosTag::VBN)
            {
                if has_aux_before(tokens, tags, i) {
                    tags[i] = PosTag::VBN;
                } else if prev
                    .is_some_and(|p| matches!(p, PosTag::PRP | PosTag::NNP) || p.is_common_noun())
                {
                    tags[i] = PosTag::VBD;
                }
                continue;
            }

            if (lower == "'s" || lower == "’s") && prev.is_some_and(|p| !p.is_noun()) {
                tags[i] = PosTag::VBZ;
                continue;
            }
        }
    }
}

fn previous_non_adverb(tags: &[PosTag], i: usize) -> Option<PosTag> {
    tags[..i].iter().rev().copied().find(|t| !t.is_adverb())
}

fn has_aux_before(tokens: &[Token], tags: &[PosTag], i: usize) -> bool {
    let mut seen = 0;
    for j in (0..i).rev() {
        if tags[j].is_adverb() {
            continue;
        }
        let lower = tokens[j].lower();
        if matches!(
            lower.as_str(),
            "be" | "am"
                | "is"
                | "are"
                | "was"
                | "were"
                | "been"
                | "being"
                | "have"
                | "has"
                | "had"
                | "having"
                | "'ve"
                | "get"
                | "gets"
                | "got"
                | "getting"
        ) {
            return true;
        }
        seen += 1;
        if seen >= 3 || !tags[j].is_verb() {
            return false;
        }
    }
    false
}

fn punct_tag(text: &str) -> PosTag {
    match text {
        "." | "!" | "?" => PosTag::Period,
        "," => PosTag::Comma,
        ":" | ";" | "-" | "–" | "—" => PosTag::Colon,
        _ => PosTag::Sym,
    }
}

fn guess_by_suffix(lower: &str) -> PosTag {
    const NOUN_SUFFIXES: &[&str] = &[
        "tion", "sion", "ment", "ness", "ity", "ance", "ence", "ship", "ism", "ware", "hood",
        "age", "ery",
    ];
    const ADJ_SUFFIXES: &[&str] = &[
        "ous", "ful", "ive", "able", "ible", "ish", "less", "ant", "ic", "ary",
    ];
    if lower.ends_with("ly") {
        return PosTag::RB;
    }
    if lower.ends_with("ing") && lower.len() > 4 {
        return PosTag::VBG;
    }
    if lower.ends_with("ed") && lower.len() > 3 {
        return PosTag::VBN;
    }
    for s in NOUN_SUFFIXES {
        if lower.ends_with(s) {
            return PosTag::NN;
        }
    }
    for s in ADJ_SUFFIXES {
        if lower.ends_with(s) {
            return PosTag::JJ;
        }
    }
    if lower.ends_with("est") && lower.len() > 4 {
        return PosTag::JJS;
    }
    if lower.ends_with('s') && !lower.ends_with("ss") && lower.len() > 2 {
        return PosTag::NNS;
    }
    PosTag::NN
}

// -------------------------------------------------------------------- chunk

fn is_np_premodifier(tag: PosTag) -> bool {
    tag.is_adjective() || matches!(tag, PosTag::CD | PosTag::VBN | PosTag::VBG)
}

/// Seed chunker.
pub fn chunk(tokens: &[Token], tags: &[PosTag]) -> Vec<Chunk> {
    assert_eq!(tokens.len(), tags.len(), "tokens/tags length mismatch");
    let mut chunks = Vec::new();
    let mut i = 0;
    let n = tokens.len();
    while i < n {
        let tag = tags[i];
        if matches!(tag, PosTag::PRP | PosTag::EX) {
            chunks.push(Chunk {
                kind: ChunkKind::NP,
                start: i,
                end: i + 1,
                head: i,
                object: None,
            });
            i += 1;
            continue;
        }
        if tag == PosTag::IN && is_subordinator(&tokens[i].lower()) {
            chunks.push(Chunk {
                kind: ChunkKind::Other,
                start: i,
                end: i + 1,
                head: i,
                object: None,
            });
            i += 1;
            continue;
        }
        if tag == PosTag::IN {
            let prep = i;
            if let Some(np) = match_np(tags, i + 1) {
                chunks.push(Chunk {
                    kind: ChunkKind::PP,
                    start: prep,
                    end: np.1,
                    head: prep,
                    object: Some(np.0),
                });
                i = np.1;
            } else {
                chunks.push(Chunk {
                    kind: ChunkKind::PP,
                    start: prep,
                    end: prep + 1,
                    head: prep,
                    object: None,
                });
                i += 1;
            }
            continue;
        }
        if let Some((np_start, np_end, head)) = match_np_full(tags, i) {
            chunks.push(Chunk {
                kind: ChunkKind::NP,
                start: np_start,
                end: np_end,
                head,
                object: None,
            });
            i = np_end;
            continue;
        }
        if tag.is_verb() || tag == PosTag::MD || (tag.is_adverb() && starts_vp(tags, i)) {
            let start = i;
            let mut j = i;
            while j < n && (tags[j] == PosTag::MD || tags[j].is_adverb()) {
                j += 1;
            }
            let verb_start = j;
            while j < n && (tags[j].is_verb() || tags[j].is_adverb() || tags[j] == PosTag::TO) {
                if tags[j] == PosTag::TO && !(j + 1 < n && tags[j + 1].is_verb()) {
                    break;
                }
                j += 1;
            }
            if j > verb_start {
                let head = (start..j)
                    .rev()
                    .find(|&k| tags[k].is_verb())
                    .expect("VP contains a verb");
                chunks.push(Chunk {
                    kind: ChunkKind::VP,
                    start,
                    end: j,
                    head,
                    object: None,
                });
                i = j;
                continue;
            }
        }
        if tag.is_adjective() || (tag.is_adverb() && i + 1 < n && tags[i + 1].is_adjective()) {
            let start = i;
            let mut j = i;
            while j < n && tags[j].is_adverb() {
                j += 1;
            }
            let mut head = j;
            while j < n && tags[j].is_adjective() {
                head = j;
                j += 1;
            }
            if head < j {
                chunks.push(Chunk {
                    kind: ChunkKind::ADJP,
                    start,
                    end: j,
                    head,
                    object: None,
                });
                i = j;
                continue;
            }
        }
        chunks.push(Chunk {
            kind: ChunkKind::Other,
            start: i,
            end: i + 1,
            head: i,
            object: None,
        });
        i += 1;
    }
    chunks
}

fn starts_vp(tags: &[PosTag], i: usize) -> bool {
    let mut j = i;
    while j < tags.len() && tags[j].is_adverb() {
        j += 1;
    }
    j < tags.len() && (tags[j].is_verb() || tags[j] == PosTag::MD)
}

fn match_np(tags: &[PosTag], i: usize) -> Option<(usize, usize)> {
    match_np_full(tags, i).map(|(s, e, _)| (s, e))
}

fn match_np_full(tags: &[PosTag], i: usize) -> Option<(usize, usize, usize)> {
    let n = tags.len();
    if i >= n {
        return None;
    }
    if matches!(tags[i], PosTag::PRP | PosTag::EX) {
        return Some((i, i + 1, i));
    }
    let mut j = i;
    if j < n && tags[j] == PosTag::PDT {
        j += 1;
    }
    if j < n && matches!(tags[j], PosTag::DT | PosTag::PRPS) {
        j += 1;
    }
    let mut saw_noun = false;
    let mut head = j;
    loop {
        if j < n && tags[j].is_adverb() && j + 1 < n && is_np_premodifier(tags[j + 1]) {
            j += 2;
            continue;
        }
        if j < n && is_np_premodifier(tags[j]) {
            j += 1;
            continue;
        }
        if j < n && tags[j].is_noun() {
            head = j;
            saw_noun = true;
            j += 1;
            if j < n && tags[j] == PosTag::POS {
                j += 1;
            }
            continue;
        }
        break;
    }
    if saw_noun && j > i {
        Some((i, j, head))
    } else {
        None
    }
}

// ------------------------------------------------------------------- clause

fn is_negative_implicative(lemma: &str) -> bool {
    matches!(lemma, "fail" | "refuse" | "decline" | "neglect" | "cease")
}

/// Seed clause analyzer.
pub fn analyze_clauses(tokens: &[Token], tags: &[PosTag], chunks: &[Chunk]) -> SentenceAnalysis {
    let boundaries = clause_boundaries(tokens, tags, chunks);
    let mut clauses = Vec::new();
    for window in boundaries.windows(2) {
        let (start, end) = (window[0], window[1]);
        if start >= end {
            continue;
        }
        let mut clause = analyze_one(tokens, tags, chunks, start, end);
        if clause.relative && clause.subject.is_none() {
            clause.subject = (0..start)
                .rev()
                .find(|&ci| chunks[ci].kind == ChunkKind::NP || chunks[ci].kind == ChunkKind::PP);
        }
        clauses.push(clause);
    }
    SentenceAnalysis { clauses }
}

fn clause_boundaries(tokens: &[Token], tags: &[PosTag], chunks: &[Chunk]) -> Vec<usize> {
    let mut bounds = vec![0];
    let has_vp_in =
        |range: std::ops::Range<usize>| range.clone().any(|ci| chunks[ci].kind == ChunkKind::VP);
    for ci in 0..chunks.len() {
        let c = &chunks[ci];
        if c.kind != ChunkKind::Other {
            continue;
        }
        let tok = &tokens[c.start];
        let tag = tags[c.start];
        let prev_bound = *bounds.last().expect("non-empty");
        let is_cc_split =
            tag == PosTag::CC && has_vp_in(prev_bound..ci) && has_vp_in(ci + 1..chunks.len());
        let is_relative = matches!(tag, PosTag::WDT | PosTag::WP);
        let is_semicolon = tok.text == ";";
        let is_subordinator_split = tag == PosTag::IN && is_subordinator(&tok.lower());
        let is_comma_split = tok.text == ","
            && has_vp_in(prev_bound..ci)
            && chunks.get(ci + 1).is_some_and(|c| c.kind == ChunkKind::NP)
            && has_vp_in(ci + 1..chunks.len());
        if is_cc_split || is_relative || is_semicolon || is_subordinator_split || is_comma_split {
            bounds.push(if is_relative { ci } else { ci + 1 });
        }
    }
    bounds.push(chunks.len());
    bounds.dedup();
    bounds
}

fn analyze_one(
    tokens: &[Token],
    tags: &[PosTag],
    chunks: &[Chunk],
    start: usize,
    end: usize,
) -> Clause {
    let mut clause = Clause {
        chunk_start: start,
        chunk_end: end,
        ..Clause::default()
    };
    clause.relative = chunks[start].kind == ChunkKind::Other
        && matches!(tags[chunks[start].start], PosTag::WDT | PosTag::WP);

    let vp_index = (start..end).find(|&ci| chunks[ci].kind == ChunkKind::VP);
    let Some(vp) = vp_index else {
        return clause;
    };
    let vp_chunk = &chunks[vp];

    let head_token = vp_chunk.head;
    let lemma = lemmatize_verb(&tokens[head_token].lower());
    let mut passive = false;
    if tags[head_token] == PosTag::VBN {
        passive = (vp_chunk.start..head_token).any(|ti| {
            matches!(lemmatize_verb(&tokens[ti].lower()).as_str(), "be" | "get")
                && tags[ti].is_verb()
        });
    }

    let mut negated = (vp_chunk.start..vp_chunk.end)
        .any(|ti| tags[ti].is_adverb() && is_negation_word(&tokens[ti].lower()));
    for ti in vp_chunk.start..head_token {
        if tags[ti].is_verb() && is_negative_implicative(&lemmatize_verb(&tokens[ti].lower())) {
            negated = !negated;
        }
    }

    clause.predicate = Some(Predicate {
        chunk: vp,
        lemma,
        head_token,
        passive,
    });
    clause.negated = negated;

    let mut subject = None;
    for ci in (start..vp).rev() {
        match chunks[ci].kind {
            ChunkKind::NP if subject.is_none() => subject = Some(ci),
            ChunkKind::PP => {
                let prep = tokens[chunks[ci].head].lower();
                if subject.is_none() {
                    clause.subject_pps.push((prep, ci));
                } else {
                    clause.leading_pps.push((prep, ci));
                }
            }
            _ => {}
        }
    }
    clause.subject_pps.reverse();
    clause.leading_pps.reverse();
    clause.subject = subject;

    for ci in vp + 1..end {
        match chunks[ci].kind {
            ChunkKind::NP if clause.object.is_none() => clause.object = Some(ci),
            ChunkKind::ADJP if clause.complement.is_none() => clause.complement = Some(ci),
            ChunkKind::PP => {
                let prep = tokens[chunks[ci].head].lower();
                clause.pps.push((prep, ci));
            }
            ChunkKind::VP => break,
            _ => {}
        }
    }

    if clause.complement.is_none()
        && clause.predicate.as_ref().map(|p| p.lemma.as_str()) == Some("be")
    {
        if let Some(obj) = clause.object.take() {
            clause.complement = Some(obj);
        }
    }

    if let Some(obj) = clause.object {
        let c = &chunks[obj];
        if (c.start..c.end).any(|ti| tags[ti] == PosTag::DT && tokens[ti].lower() == "no") {
            clause.negated = !clause.negated;
        }
    }

    clause
}

// ---------------------------------------------------------------------- ner

fn is_infix(lower: &str) -> bool {
    matches!(lower, "of" | "and" | "for" | "the" | "de" | "van" | "von")
}

fn is_title(word: &str) -> bool {
    matches!(
        word,
        "Prof" | "Dr" | "Mr" | "Mrs" | "Ms" | "Sr" | "Jr" | "St" | "President" | "CEO"
    )
}

fn likely_sentence_case(token: &Token) -> bool {
    TagDictionary::global()
        .lookup(&token.lower())
        .is_some_and(|tags| !tags.iter().any(|t| t.is_proper_noun()))
}

/// Seed entity spotter.
pub fn spot_entities(tokens: &[Token], sentence: &Sentence) -> Vec<NamedEntity> {
    let mut entities = Vec::new();
    let range = sentence.start_token..sentence.end_token;
    let mut i = range.start;
    while i < range.end {
        let tok = &tokens[i];
        let sentence_initial = i == sentence.start_token;
        let opens = tok.kind == TokenKind::Word
            && tok.is_capitalized()
            && !(sentence_initial && likely_sentence_case(tok));
        if !opens {
            i += 1;
            continue;
        }
        let start = i;
        let mut end = i + 1;
        while end < range.end {
            let t = &tokens[end];
            let capitalized_word = t.kind == TokenKind::Word && t.is_capitalized();
            let infix_then_cap = t.kind == TokenKind::Word
                && is_infix(&t.lower())
                && end + 1 < range.end
                && tokens[end + 1].kind == TokenKind::Word
                && tokens[end + 1].is_capitalized();
            let abbrev_period = t.text == "."
                && end == start + 1
                && is_title(&tokens[start].text)
                && t.span.start == tokens[end - 1].span.end;
            if capitalized_word || infix_then_cap || abbrev_period {
                end += 1;
            } else {
                break;
            }
        }
        split_candidate(tokens, start, end, &mut entities);
        i = end;
    }
    entities
}

fn split_candidate(tokens: &[Token], start: usize, end: usize, out: &mut Vec<NamedEntity>) {
    let mut piece_start = start;
    let mut k = start;
    while k < end {
        let lower = tokens[k].lower();
        let splits_here =
            (lower == "of" || lower == "and" || lower == "for") && k > piece_start && k + 1 < end;
        let possessive = lower == "'s" || lower == "’s";
        if splits_here || possessive {
            emit(tokens, piece_start, k, out);
            piece_start = k + 1;
        }
        k += 1;
    }
    emit(tokens, piece_start, end, out);
}

fn emit(tokens: &[Token], start: usize, end: usize, out: &mut Vec<NamedEntity>) {
    if start >= end {
        return;
    }
    if end - start == 1 && (is_infix(&tokens[start].lower()) || tokens[start].text == ".") {
        return;
    }
    let mut text = String::new();
    for (n, t) in tokens[start..end].iter().enumerate() {
        if n > 0 && t.text != "." {
            text.push(' ');
        }
        text.push_str(&t.text);
    }
    out.push(NamedEntity {
        text,
        span: Span::new(tokens[start].span.start, tokens[end - 1].span.end),
        start_token: start,
        end_token: end,
    });
}

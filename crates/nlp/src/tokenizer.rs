//! Offset-preserving English tokenizer.
//!
//! WebFountain's tokenizer miner "produces a stream of tokens from the input
//! text". Ours keeps exact byte spans into the source so downstream
//! annotations (spots, sentiments) can always be mapped back to the original
//! entity text, which the platform's annotation model requires.

use wf_types::Span;

/// Lexical class of a token, decided purely from its surface form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word (possibly with internal hyphen or apostrophe:
    /// "add-on", "don't" is split, but "o'clock" stays).
    Word,
    /// Number: digits, possibly with decimal point, comma groups, or a
    /// trailing percent handled as a separate token.
    Number,
    /// Punctuation character(s).
    Punct,
}

/// A single token with its surface text and source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form, exactly as it appears in the source.
    pub text: String,
    /// Byte span in the source text.
    pub span: Span,
    /// Surface-form class.
    pub kind: TokenKind,
}

impl Token {
    /// Lower-cased surface form (allocates; used for dictionary lookups).
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// True when the first character is uppercase.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// True when every alphabetic character is uppercase (acronyms: "IBM").
    pub fn is_all_caps(&self) -> bool {
        let mut saw_alpha = false;
        for c in self.text.chars() {
            if c.is_alphabetic() {
                saw_alpha = true;
                if !c.is_uppercase() {
                    return false;
                }
            }
        }
        saw_alpha
    }
}

/// Tokenizes `text` into words, numbers and punctuation, preserving spans.
///
/// Rules:
/// - maximal runs of alphanumeric characters form words/numbers;
/// - internal hyphens and apostrophes are kept inside a word when flanked by
///   alphanumerics ("add-on", "entry-level"), except the clitics `'s`,
///   `n't`, `'re`, `'ve`, `'ll`, `'d`, `'m`, which split off as their own
///   tokens (Penn Treebank convention);
/// - a `.` between digits stays inside a number ("2.4");
/// - every other non-whitespace character is a single punctuation token.
///
/// This is the owned-`Token` convenience wrapper over the zero-copy span
/// scanner ([`crate::view::scan`]); hot paths should scan into a reused
/// [`crate::view::DocScratch`] instead and materialize only what they keep.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut scratch = crate::view::DocScratch::new();
    crate::view::scan(text, &mut scratch);
    let view = scratch.view(text);
    view.to_tokens(0, crate::view::TokenAccess::len(&view))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn simple_sentence() {
        let toks = tokenize("This camera takes excellent pictures.");
        assert_eq!(
            texts(&toks),
            vec!["This", "camera", "takes", "excellent", "pictures", "."]
        );
    }

    #[test]
    fn spans_reconstruct_source() {
        let text = "The colors are vibrant!";
        for t in tokenize(text) {
            assert_eq!(t.span.slice(text), t.text);
        }
    }

    #[test]
    fn hyphenated_words_stay_joined() {
        let toks = tokenize("an add-on adapter for entry-level users");
        assert!(texts(&toks).contains(&"add-on"));
        assert!(texts(&toks).contains(&"entry-level"));
    }

    #[test]
    fn clitics_split_off() {
        let toks = tokenize("It doesn't work; the camera's lens broke.");
        let t = texts(&toks);
        assert!(t.contains(&"does"));
        assert!(t.contains(&"n't"));
        assert!(t.contains(&"camera"));
        assert!(t.contains(&"'s"));
    }

    #[test]
    fn numbers_with_decimals() {
        let toks = tokenize("2.4 GHz and 72 GB");
        assert_eq!(toks[0].text, "2.4");
        assert_eq!(toks[0].kind, TokenKind::Number);
        assert_eq!(toks[3].text, "72");
    }

    #[test]
    fn trailing_hyphen_is_not_kept() {
        let toks = tokenize("well- made");
        assert_eq!(texts(&toks), vec!["well", "-", "made"]);
    }

    #[test]
    fn punctuation_is_individual_tokens() {
        let toks = tokenize("Wow!!  (Really?)");
        assert_eq!(texts(&toks), vec!["Wow", "!", "!", "(", "Really", "?", ")"]);
    }

    #[test]
    fn capitalization_predicates() {
        let toks = tokenize("IBM and Sony make Cameras");
        assert!(toks[0].is_all_caps());
        assert!(toks[0].is_capitalized());
        assert!(!toks[1].is_capitalized());
        assert!(toks[2].is_capitalized());
        assert!(!toks[2].is_all_caps());
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn unicode_text_does_not_panic() {
        let text = "café “quoted” — naïve";
        let toks = tokenize(text);
        for t in &toks {
            assert_eq!(t.span.slice(text), t.text);
        }
        assert!(toks.iter().any(|t| t.text == "café"));
    }

    #[test]
    fn alphanumeric_model_names() {
        let toks = tokenize("the NR70 series and the T series CLIEs");
        assert!(texts(&toks).contains(&"NR70"));
        assert!(texts(&toks).contains(&"CLIEs"));
    }
}

//! Offset-preserving English tokenizer.
//!
//! WebFountain's tokenizer miner "produces a stream of tokens from the input
//! text". Ours keeps exact byte spans into the source so downstream
//! annotations (spots, sentiments) can always be mapped back to the original
//! entity text, which the platform's annotation model requires.

use wf_types::Span;

/// Lexical class of a token, decided purely from its surface form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word (possibly with internal hyphen or apostrophe:
    /// "add-on", "don't" is split, but "o'clock" stays).
    Word,
    /// Number: digits, possibly with decimal point, comma groups, or a
    /// trailing percent handled as a separate token.
    Number,
    /// Punctuation character(s).
    Punct,
}

/// A single token with its surface text and source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form, exactly as it appears in the source.
    pub text: String,
    /// Byte span in the source text.
    pub span: Span,
    /// Surface-form class.
    pub kind: TokenKind,
}

impl Token {
    /// Lower-cased surface form (allocates; used for dictionary lookups).
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// True when the first character is uppercase.
    pub fn is_capitalized(&self) -> bool {
        self.text.chars().next().is_some_and(|c| c.is_uppercase())
    }

    /// True when every alphabetic character is uppercase (acronyms: "IBM").
    pub fn is_all_caps(&self) -> bool {
        let mut saw_alpha = false;
        for c in self.text.chars() {
            if c.is_alphabetic() {
                saw_alpha = true;
                if !c.is_uppercase() {
                    return false;
                }
            }
        }
        saw_alpha
    }
}

/// Tokenizes `text` into words, numbers and punctuation, preserving spans.
///
/// Rules:
/// - maximal runs of alphanumeric characters form words/numbers;
/// - internal hyphens and apostrophes are kept inside a word when flanked by
///   alphanumerics ("add-on", "entry-level"), except the clitics `'s`,
///   `n't`, `'re`, `'ve`, `'ll`, `'d`, `'m`, which split off as their own
///   tokens (Penn Treebank convention);
/// - a `.` between digits stays inside a number ("2.4");
/// - every other non-whitespace character is a single punctuation token.
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = text[i..].chars().next().expect("in-bounds char");
        if c.is_whitespace() {
            i += c.len_utf8();
            continue;
        }
        if c.is_alphanumeric() {
            let start = i;
            let mut end = i;
            let mut has_alpha = false;
            let mut has_digit = false;
            let mut chars = text[i..].char_indices().peekable();
            while let Some((off, ch)) = chars.next() {
                let abs = i + off;
                if ch.is_alphanumeric() {
                    has_alpha |= ch.is_alphabetic();
                    has_digit |= ch.is_ascii_digit();
                    end = abs + ch.len_utf8();
                } else if (ch == '-' || ch == '\'' || ch == '’')
                    && end == abs
                    && abs > start
                    && chars
                        .peek()
                        .is_some_and(|&(_, next)| next.is_alphanumeric())
                {
                    // internal joiner — but check clitic split below
                    end = abs + ch.len_utf8();
                } else if ch == '.'
                    && end == abs
                    && has_digit
                    && !has_alpha
                    && chars.peek().is_some_and(|&(_, next)| next.is_ascii_digit())
                {
                    end = abs + 1;
                } else {
                    break;
                }
            }
            // If the run ends with a dangling joiner (e.g. "well-" before a
            // non-alphanumeric), back it off.
            let mut surface = &text[start..end];
            while surface.ends_with('-') || surface.ends_with('\'') || surface.ends_with('’') {
                end -= surface.chars().next_back().expect("non-empty").len_utf8();
                surface = &text[start..end];
            }
            split_clitics(text, start, end, has_alpha, &mut tokens);
            i = end;
        } else {
            let end = i + c.len_utf8();
            tokens.push(Token {
                text: text[i..end].to_string(),
                span: Span::new(i, end),
                kind: TokenKind::Punct,
            });
            i = end;
        }
    }
    tokens
}

/// Splits Penn-Treebank clitics off the end of a word run and pushes the
/// resulting token(s).
fn split_clitics(text: &str, start: usize, end: usize, has_alpha: bool, out: &mut Vec<Token>) {
    let surface = &text[start..end];
    let lower = surface.to_lowercase();
    // clitic suffixes, longest first; n't must win over 't
    const CLITICS: &[&str] = &["n't", "n’t", "'s", "’s", "'re", "'ve", "'ll", "'d", "'m"];
    for clitic in CLITICS {
        if lower.ends_with(clitic) && lower.len() > clitic.len() {
            let split = end - clitic.len();
            push_word(text, start, split, has_alpha, out);
            out.push(Token {
                text: text[split..end].to_string(),
                span: Span::new(split, end),
                kind: TokenKind::Word,
            });
            return;
        }
    }
    push_word(text, start, end, has_alpha, out);
}

fn push_word(text: &str, start: usize, end: usize, has_alpha: bool, out: &mut Vec<Token>) {
    if start == end {
        return;
    }
    let kind = if has_alpha {
        TokenKind::Word
    } else {
        TokenKind::Number
    };
    out.push(Token {
        text: text[start..end].to_string(),
        span: Span::new(start, end),
        kind,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn simple_sentence() {
        let toks = tokenize("This camera takes excellent pictures.");
        assert_eq!(
            texts(&toks),
            vec!["This", "camera", "takes", "excellent", "pictures", "."]
        );
    }

    #[test]
    fn spans_reconstruct_source() {
        let text = "The colors are vibrant!";
        for t in tokenize(text) {
            assert_eq!(t.span.slice(text), t.text);
        }
    }

    #[test]
    fn hyphenated_words_stay_joined() {
        let toks = tokenize("an add-on adapter for entry-level users");
        assert!(texts(&toks).contains(&"add-on"));
        assert!(texts(&toks).contains(&"entry-level"));
    }

    #[test]
    fn clitics_split_off() {
        let toks = tokenize("It doesn't work; the camera's lens broke.");
        let t = texts(&toks);
        assert!(t.contains(&"does"));
        assert!(t.contains(&"n't"));
        assert!(t.contains(&"camera"));
        assert!(t.contains(&"'s"));
    }

    #[test]
    fn numbers_with_decimals() {
        let toks = tokenize("2.4 GHz and 72 GB");
        assert_eq!(toks[0].text, "2.4");
        assert_eq!(toks[0].kind, TokenKind::Number);
        assert_eq!(toks[3].text, "72");
    }

    #[test]
    fn trailing_hyphen_is_not_kept() {
        let toks = tokenize("well- made");
        assert_eq!(texts(&toks), vec!["well", "-", "made"]);
    }

    #[test]
    fn punctuation_is_individual_tokens() {
        let toks = tokenize("Wow!!  (Really?)");
        assert_eq!(texts(&toks), vec!["Wow", "!", "!", "(", "Really", "?", ")"]);
    }

    #[test]
    fn capitalization_predicates() {
        let toks = tokenize("IBM and Sony make Cameras");
        assert!(toks[0].is_all_caps());
        assert!(toks[0].is_capitalized());
        assert!(!toks[1].is_capitalized());
        assert!(toks[2].is_capitalized());
        assert!(!toks[2].is_all_caps());
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn unicode_text_does_not_panic() {
        let text = "café “quoted” — naïve";
        let toks = tokenize(text);
        for t in &toks {
            assert_eq!(t.span.slice(text), t.text);
        }
        assert!(toks.iter().any(|t| t.text == "café"));
    }

    #[test]
    fn alphanumeric_model_names() {
        let toks = tokenize("the NR70 series and the T series CLIEs");
        assert!(texts(&toks).contains(&"NR70"));
        assert!(texts(&toks).contains(&"CLIEs"));
    }
}

//! Zero-copy token views for the batched NLP hot path.
//!
//! The seed pipeline carried a `String` per token and re-lowercased it at
//! every dictionary lookup. This module replaces that with offset spans
//! into the source text plus a single arena holding each token's lowercase
//! form, computed once at scan time. All downstream stages (POS, chunk,
//! clause, NER, sentence split) are generic over [`TokenAccess`], so they
//! run unchanged over either representation:
//!
//! - [`DocView`] / [`SpanToken`]: the zero-copy path. Token text is a
//!   borrowed slice of the document; the lowercase form is a borrowed
//!   slice of the per-document arena in [`DocScratch`].
//! - [`LoweredTokens`]: a compatibility wrapper over the legacy owned
//!   `&[Token]` slice (lowercases each token once up front), used by the
//!   public `&[Token]` entry points.
//!
//! [`DocScratch`] is reused across a batch: `annotate_batch` clears it
//! between documents instead of reallocating, so steady-state batch
//! processing does no per-token allocation at all before materialization.

use crate::tokenizer::{Token, TokenKind};
use wf_types::Span;

/// Uniform, allocation-free access to a tokenized document or sentence.
pub trait TokenAccess {
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Lexical class of token `i`.
    fn kind(&self, i: usize) -> TokenKind;
    /// Byte span of token `i` in the source document.
    fn span(&self, i: usize) -> Span;
    /// Surface form of token `i` (borrowed; no allocation).
    fn text(&self, i: usize) -> &str;
    /// Lowercase form of token `i` (borrowed; computed once at scan time).
    fn lower(&self, i: usize) -> &str;

    /// True when the first character is uppercase.
    fn is_capitalized(&self, i: usize) -> bool {
        let text = self.text(i);
        match text.as_bytes().first() {
            Some(&b) if b < 0x80 => b.is_ascii_uppercase(),
            _ => text.chars().next().is_some_and(|c| c.is_uppercase()),
        }
    }

    /// True when every alphabetic character is uppercase (acronyms: "IBM").
    fn is_all_caps(&self, i: usize) -> bool {
        let mut saw_alpha = false;
        for c in self.text(i).chars() {
            if c.is_alphabetic() {
                saw_alpha = true;
                if !c.is_uppercase() {
                    return false;
                }
            }
        }
        saw_alpha
    }
}

/// A token as offsets only: its span in the source text, its span in the
/// lowercase arena, and its lexical class. 40 bytes, `Copy`, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken {
    /// Byte span in the source text.
    pub span: Span,
    /// Byte span of the lowercase form in the scratch arena.
    pub lower: Span,
    /// Surface-form class.
    pub kind: TokenKind,
}

/// Reusable per-document scratch: span tokens plus the lowercase arena.
///
/// Clearing retains capacity, so one scratch amortizes all tokenizer
/// allocations across a batch.
#[derive(Debug, Default)]
pub struct DocScratch {
    pub(crate) tokens: Vec<SpanToken>,
    pub(crate) arena: String,
    /// Buffer for the clitic check's lowercased word run.
    lower_buf: String,
}

impl DocScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the previous document's tokens, keeping allocations.
    pub fn clear(&mut self) {
        self.tokens.clear();
        self.arena.clear();
    }

    /// A zero-copy view over `text`, valid until the next `clear`/`scan`.
    /// `text` must be the string last scanned into this scratch.
    pub fn view<'a>(&'a self, text: &'a str) -> DocView<'a> {
        DocView {
            text,
            tokens: &self.tokens,
            arena: &self.arena,
        }
    }
}

/// Zero-copy view of a scanned document: source text + span tokens + arena.
#[derive(Debug, Clone, Copy)]
pub struct DocView<'a> {
    text: &'a str,
    tokens: &'a [SpanToken],
    arena: &'a str,
}

impl<'a> DocView<'a> {
    /// The underlying source text.
    pub fn source(&self) -> &'a str {
        self.text
    }

    /// Materializes token `i` as an owned legacy [`Token`].
    pub fn to_token(&self, i: usize) -> Token {
        let t = self.tokens[i];
        Token {
            text: t.span.slice(self.text).to_string(),
            span: t.span,
            kind: t.kind,
        }
    }

    /// Materializes a token range as owned legacy [`Token`]s.
    pub fn to_tokens(&self, start: usize, end: usize) -> Vec<Token> {
        (start..end).map(|i| self.to_token(i)).collect()
    }
}

impl TokenAccess for DocView<'_> {
    fn len(&self) -> usize {
        self.tokens.len()
    }
    fn kind(&self, i: usize) -> TokenKind {
        self.tokens[i].kind
    }
    fn span(&self, i: usize) -> Span {
        self.tokens[i].span
    }
    fn text(&self, i: usize) -> &str {
        self.tokens[i].span.slice(self.text)
    }
    fn lower(&self, i: usize) -> &str {
        self.tokens[i].lower.slice(self.arena)
    }
}

/// A contiguous sub-range of another view (sentence-local indexing).
#[derive(Debug, Clone, Copy)]
pub struct SubView<'a, T: TokenAccess> {
    base: &'a T,
    start: usize,
    end: usize,
}

impl<'a, T: TokenAccess> SubView<'a, T> {
    pub fn new(base: &'a T, start: usize, end: usize) -> Self {
        debug_assert!(start <= end && end <= base.len());
        SubView { base, start, end }
    }
}

impl<T: TokenAccess> TokenAccess for SubView<'_, T> {
    fn len(&self) -> usize {
        self.end - self.start
    }
    fn kind(&self, i: usize) -> TokenKind {
        self.base.kind(self.start + i)
    }
    fn span(&self, i: usize) -> Span {
        self.base.span(self.start + i)
    }
    fn text(&self, i: usize) -> &str {
        self.base.text(self.start + i)
    }
    fn lower(&self, i: usize) -> &str {
        self.base.lower(self.start + i)
    }
}

/// Compatibility adapter: owned legacy tokens with lowers precomputed once,
/// so the generic stages stay allocation-free over `&[Token]` input too.
pub struct LoweredTokens<'a> {
    tokens: &'a [Token],
    lowers: Vec<String>,
}

impl<'a> LoweredTokens<'a> {
    pub fn new(tokens: &'a [Token]) -> Self {
        LoweredTokens {
            tokens,
            lowers: tokens.iter().map(|t| t.lower()).collect(),
        }
    }
}

impl TokenAccess for LoweredTokens<'_> {
    fn len(&self) -> usize {
        self.tokens.len()
    }
    fn kind(&self, i: usize) -> TokenKind {
        self.tokens[i].kind
    }
    fn span(&self, i: usize) -> Span {
        self.tokens[i].span
    }
    fn text(&self, i: usize) -> &str {
        &self.tokens[i].text
    }
    fn lower(&self, i: usize) -> &str {
        &self.lowers[i]
    }
}

/// Scans `text` into `scratch` as span tokens, replacing its previous
/// contents. Token boundaries are byte-identical to the seed tokenizer
/// (`naive::tokenize`); the lowercase of each emitted token is appended to
/// the arena so `lower(i)` equals `text(i).to_lowercase()` by construction.
pub fn scan(text: &str, scratch: &mut DocScratch) {
    scratch.clear();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b < 0x80 {
            // ASCII fast path: classify the byte without UTF-8 decoding.
            // 0x0B (vertical tab) is Unicode whitespace but not ASCII
            // whitespace per `u8::is_ascii_whitespace`, so spell it out.
            if b.is_ascii_whitespace() || b == 0x0B {
                i += 1;
            } else if b.is_ascii_alphanumeric() {
                i = scan_word_run(text, i, scratch);
            } else {
                push_span_token(text, i, i + 1, TokenKind::Punct, scratch);
                i += 1;
            }
            continue;
        }
        let c = text[i..].chars().next().expect("in-bounds char");
        if c.is_whitespace() {
            i += c.len_utf8();
        } else if c.is_alphanumeric() {
            i = scan_word_run(text, i, scratch);
        } else {
            let end = i + c.len_utf8();
            push_span_token(text, i, end, TokenKind::Punct, scratch);
            i = end;
        }
    }
}

/// Scans one word/number run starting at the alphanumeric character at
/// `start`, pushes its token(s), and returns the position to resume at.
/// Byte-steps through ASCII and decodes chars only when a non-ASCII byte
/// appears, preserving the seed run rules exactly: internal joiners
/// (`-`, `'`, `’`) flanked by alphanumerics stay in the run, a `.` stays
/// inside an all-digit run, and `has_digit` tracks ASCII digits only.
fn scan_word_run(text: &str, start: usize, scratch: &mut DocScratch) -> usize {
    let bytes = text.as_bytes();
    let mut end = start;
    let mut j = start;
    let mut has_alpha = false;
    let mut has_digit = false;
    while j < bytes.len() {
        let b = bytes[j];
        if b < 0x80 {
            if b.is_ascii_alphanumeric() {
                has_alpha |= b.is_ascii_alphabetic();
                has_digit |= b.is_ascii_digit();
                j += 1;
                end = j;
            } else if (b == b'-' || b == b'\'')
                && end == j
                && j > start
                && next_char_is_alnum(text, j + 1)
            {
                // internal joiner — clitic split happens below
                j += 1;
                end = j;
            } else if b == b'.'
                && end == j
                && has_digit
                && !has_alpha
                && bytes.get(j + 1).is_some_and(|nb| nb.is_ascii_digit())
            {
                j += 1;
                end = j;
            } else {
                break;
            }
        } else {
            let ch = text[j..].chars().next().expect("in-bounds char");
            let width = ch.len_utf8();
            if ch.is_alphanumeric() {
                has_alpha |= ch.is_alphabetic();
                j += width;
                end = j;
            } else if ch == '’' && end == j && j > start && next_char_is_alnum(text, j + width) {
                j += width;
                end = j;
            } else {
                break;
            }
        }
    }
    // back off a dangling trailing joiner ("well-" before space)
    let mut surface = &text[start..end];
    while surface.ends_with('-') || surface.ends_with('\'') || surface.ends_with('’') {
        end -= surface.chars().next_back().expect("non-empty").len_utf8();
        surface = &text[start..end];
    }
    split_clitics(text, start, end, has_alpha, scratch);
    end
}

/// Whether the character starting at byte `pos` is alphanumeric.
fn next_char_is_alnum(text: &str, pos: usize) -> bool {
    match text.as_bytes().get(pos) {
        Some(&b) if b < 0x80 => b.is_ascii_alphanumeric(),
        Some(_) => text[pos..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric()),
        None => false,
    }
}

/// Splits Penn-Treebank clitics off the end of a word run. Mirrors the seed
/// logic, with one hardening: the seed computed the split point with byte
/// arithmetic on the *lowercased* suffix length and would slice at it
/// unchecked; here a non-boundary split (only possible if lowercasing ever
/// changed the byte length of the tail) skips the clitic instead of
/// panicking.
fn split_clitics(text: &str, start: usize, end: usize, has_alpha: bool, scratch: &mut DocScratch) {
    let surface = &text[start..end];
    scratch.lower_buf.clear();
    lowercase_into(surface, &mut scratch.lower_buf);
    // For ASCII runs the lowercase in `lower_buf` is byte-aligned with the
    // surface, so token pushes below can copy from it instead of
    // lowercasing each segment a second time.
    let ascii = surface.is_ascii();
    let push = |s: usize, e: usize, kind: TokenKind, scratch: &mut DocScratch| {
        if ascii {
            push_span_token_prelowered(start, s, e, kind, scratch);
        } else {
            push_span_token(text, s, e, kind, scratch);
        }
    };
    // clitic suffixes, longest first; n't must win over 't
    const CLITICS: &[&str] = &["n't", "n’t", "'s", "’s", "'re", "'ve", "'ll", "'d", "'m"];
    for clitic in CLITICS {
        if scratch.lower_buf.ends_with(clitic) && scratch.lower_buf.len() > clitic.len() {
            let split = end - clitic.len();
            if !text.is_char_boundary(split) {
                continue;
            }
            if split > start {
                let kind = if has_alpha {
                    TokenKind::Word
                } else {
                    TokenKind::Number
                };
                push(start, split, kind, scratch);
            }
            push(split, end, TokenKind::Word, scratch);
            return;
        }
    }
    if start < end {
        let kind = if has_alpha {
            TokenKind::Word
        } else {
            TokenKind::Number
        };
        push(start, end, kind, scratch);
    }
}

/// Pushes a token of an ASCII word run whose lowercase is already in
/// `lower_buf` (offsets into the run and into its lowercase coincide).
fn push_span_token_prelowered(
    run_start: usize,
    start: usize,
    end: usize,
    kind: TokenKind,
    scratch: &mut DocScratch,
) {
    let arena_start = scratch.arena.len();
    let rel = (start - run_start)..(end - run_start);
    scratch.arena.push_str(&scratch.lower_buf[rel]);
    scratch.tokens.push(SpanToken {
        span: Span::new(start, end),
        lower: Span::new(arena_start, scratch.arena.len()),
        kind,
    });
}

fn push_span_token(
    text: &str,
    start: usize,
    end: usize,
    kind: TokenKind,
    scratch: &mut DocScratch,
) {
    let arena_start = scratch.arena.len();
    lowercase_into(&text[start..end], &mut scratch.arena);
    scratch.tokens.push(SpanToken {
        span: Span::new(start, end),
        lower: Span::new(arena_start, scratch.arena.len()),
        kind,
    });
}

/// Appends the lowercase of `s` to `out`, byte-identical to
/// `s.to_lowercase()`. ASCII (the hot path) lowercases in place with no
/// allocation; non-ASCII goes through `str::to_lowercase` to keep its
/// context-sensitive mappings (Greek final sigma) — `char::to_lowercase`
/// would silently differ there.
fn lowercase_into(s: &str, out: &mut String) {
    if s.is_ascii() {
        let start = out.len();
        out.push_str(s);
        out[start..].make_ascii_lowercase();
    } else {
        out.push_str(&s.to_lowercase());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn view_matches_naive(text: &str) {
        let naive_toks = naive::tokenize(text);
        let mut scratch = DocScratch::new();
        scan(text, &mut scratch);
        let view = scratch.view(text);
        assert_eq!(view.len(), naive_toks.len(), "token count for {text:?}");
        for (i, t) in naive_toks.iter().enumerate() {
            assert_eq!(view.text(i), t.text, "text at {i} in {text:?}");
            assert_eq!(view.span(i), t.span, "span at {i} in {text:?}");
            assert_eq!(view.kind(i), t.kind, "kind at {i} in {text:?}");
            assert_eq!(view.lower(i), t.lower(), "lower at {i} in {text:?}");
            assert_eq!(
                view.is_capitalized(i),
                t.is_capitalized(),
                "cap at {i} in {text:?}"
            );
            assert_eq!(
                view.is_all_caps(i),
                t.is_all_caps(),
                "caps at {i} in {text:?}"
            );
        }
    }

    #[test]
    fn span_scan_matches_seed_tokenizer() {
        for text in [
            "This camera takes excellent pictures.",
            "It doesn't work; the camera's lens broke.",
            "2.4 GHz and 72 GB",
            "well- made",
            "Wow!!  (Really?)",
            "café “quoted” — naïve",
            "the NR70 series and the T series CLIEs",
            "IBM and Sony make Cameras",
            "",
            "   \n\t ",
            "CAN'T STOP",
            "İstanbul İSN'T here", // dotted capital I lowercases to 2 chars
            "ΟΔΟΣ rules",          // word-final Σ takes the final-sigma form ς
        ] {
            view_matches_naive(text);
        }
    }

    #[test]
    fn scratch_reuse_across_documents() {
        let mut scratch = DocScratch::new();
        scan("First document here.", &mut scratch);
        let first_len = scratch.tokens.len();
        assert!(first_len > 0);
        scan("Second one.", &mut scratch);
        let view = scratch.view("Second one.");
        assert_eq!(view.text(0), "Second");
        assert_eq!(view.lower(0), "second");
    }

    #[test]
    fn subview_offsets_into_base() {
        let text = "One two three four";
        let mut scratch = DocScratch::new();
        scan(text, &mut scratch);
        let view = scratch.view(text);
        let sub = SubView::new(&view, 1, 3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.text(0), "two");
        assert_eq!(sub.lower(1), "three");
    }

    #[test]
    fn lowered_tokens_adapter() {
        let toks = naive::tokenize("The CAMERA Works");
        let lt = LoweredTokens::new(&toks);
        assert_eq!(lt.len(), 3);
        assert_eq!(lt.text(1), "CAMERA");
        assert_eq!(lt.lower(1), "camera");
        assert!(lt.is_all_caps(1));
    }
}

//! English NLP substrate for the WebFountain sentiment miner.
//!
//! The paper's pipeline depends on four language-processing miners — a
//! tokenizer, the Ratnaparkhi POS tagger, the Talent shallow parser, and a
//! capitalization-based named entity spotter. This crate re-implements all
//! of them from scratch:
//!
//! - [`tokenizer`]: offset-preserving tokenization,
//! - [`sentence`]: sentence splitting,
//! - [`pos`]: dictionary + contextual-rule POS tagging (Penn Treebank tags),
//! - [`lemma`]: rule-based lemmatization (predicate lookup key),
//! - [`chunk`]: NP/VP/PP/ADJP shallow chunking,
//! - [`clause`]: clause decomposition into SP/OP/CP/PP components,
//! - [`ner`]: capitalized-noun-phrase named entity spotting with split
//!   heuristics.
//!
//! [`Pipeline`] bundles the stages for one-call analysis of raw text.

pub mod chunk;
pub mod clause;
pub mod dict;
pub mod lemma;
pub mod naive;
pub mod ner;
pub mod pos;
pub mod sentence;
pub mod tags;
pub mod tokenizer;
pub mod view;

pub use chunk::{Chunk, ChunkKind};
pub use clause::{Clause, Predicate, SentenceAnalysis};
pub use ner::NamedEntity;
pub use pos::PosTagger;
pub use sentence::Sentence;
pub use tags::PosTag;
pub use tokenizer::{Token, TokenKind};
pub use view::{DocScratch, DocView, LoweredTokens, SpanToken, SubView, TokenAccess};

/// A fully analyzed sentence: tokens (sentence-local), tags, chunks and
/// clause structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzedSentence {
    /// Byte span of the sentence in the source document.
    pub span: wf_types::Span,
    /// The sentence's tokens (indices below are into this vector).
    pub tokens: Vec<Token>,
    /// One Penn Treebank tag per token.
    pub tags: Vec<PosTag>,
    /// Base-phrase chunks over the tokens.
    pub chunks: Vec<Chunk>,
    /// Clause decomposition.
    pub analysis: SentenceAnalysis,
}

impl AnalyzedSentence {
    /// Surface text of a chunk by index.
    pub fn chunk_text(&self, chunk_index: usize) -> String {
        self.chunks[chunk_index].text(&self.tokens)
    }

    /// Lower-cased lemma of the token at `index`.
    pub fn lemma(&self, index: usize) -> String {
        lemma::lemmatize(&self.tokens[index].lower(), self.tags[index])
    }
}

/// Everything the pipeline derives from one document in one pass:
/// per-sentence analyses plus named entities. Entity token indices are
/// into the document-level token stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DocAnnotations {
    pub sentences: Vec<AnalyzedSentence>,
    pub entities: Vec<NamedEntity>,
}

/// Deterministic per-stage unit costs for analyzed documents, in
/// simulated milliseconds: one unit per token for `tokenize` and `pos`,
/// one per chunk, one per clause, one per named entity. Derived purely
/// from the annotation output, so same text ⇒ same costs on any host —
/// the currency the continuous profiler's `nlp.*` stage spans charge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCosts {
    pub tokenize: u64,
    pub pos: u64,
    pub chunk: u64,
    pub clause: u64,
    pub ner: u64,
}

impl StageCosts {
    /// Adds one document's stage units.
    pub fn absorb(&mut self, doc: &DocAnnotations) {
        for sentence in &doc.sentences {
            let tokens = sentence.tokens.len() as u64;
            self.tokenize += tokens;
            self.pos += tokens;
            self.chunk += sentence.chunks.len() as u64;
            self.clause += sentence.analysis.clauses.len() as u64;
        }
        self.ner += doc.entities.len() as u64;
    }

    /// Folds a whole batch.
    pub fn from_annotations(docs: &[DocAnnotations]) -> StageCosts {
        let mut costs = StageCosts::default();
        for doc in docs {
            costs.absorb(doc);
        }
        costs
    }

    /// `(stage name, units)` pairs in pipeline order.
    pub fn stages(&self) -> [(&'static str, u64); 5] {
        [
            ("tokenize", self.tokenize),
            ("pos", self.pos),
            ("chunk", self.chunk),
            ("clause", self.clause),
            ("ner", self.ner),
        ]
    }

    pub fn total(&self) -> u64 {
        self.tokenize + self.pos + self.chunk + self.clause + self.ner
    }
}

/// End-to-end text analysis pipeline: tokenize → split → tag → chunk →
/// clause-analyze.
pub struct Pipeline {
    tagger: PosTagger,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline {
            tagger: PosTagger::new(),
        }
    }

    /// Analyzes raw text into per-sentence structures.
    pub fn analyze(&self, text: &str) -> Vec<AnalyzedSentence> {
        let mut scratch = DocScratch::new();
        self.analyze_with(text, &mut scratch)
    }

    /// Like [`Pipeline::analyze`] but reuses caller-provided scratch, so a
    /// batch of documents shares one set of tokenizer allocations.
    pub fn analyze_with(&self, text: &str, scratch: &mut DocScratch) -> Vec<AnalyzedSentence> {
        view::scan(text, scratch);
        let doc = scratch.view(text);
        let sentences = sentence::split_tokens(&doc);
        sentences
            .iter()
            .map(|s| self.analyze_span(&doc, s))
            .collect()
    }

    /// Runs tag → chunk → clause over one sentence of a scanned document and
    /// materializes the owned [`AnalyzedSentence`].
    fn analyze_span(&self, doc: &DocView<'_>, s: &Sentence) -> AnalyzedSentence {
        let sub = SubView::new(doc, s.start_token, s.end_token);
        let tags = self.tagger.tag_tokens(&sub);
        let chunks = chunk::chunk_tokens(&sub, &tags);
        let analysis = clause::analyze_clause_tokens(&sub, &tags, &chunks);
        AnalyzedSentence {
            span: s.span,
            tokens: doc.to_tokens(s.start_token, s.end_token),
            tags,
            chunks,
            analysis,
        }
    }

    /// Analyzes a single sentence that is already isolated (no splitting).
    pub fn analyze_sentence(&self, text: &str) -> AnalyzedSentence {
        let mut scratch = DocScratch::new();
        view::scan(text, &mut scratch);
        let doc = scratch.view(text);
        let n = TokenAccess::len(&doc);
        let tags = self.tagger.tag_tokens(&doc);
        let chunks = chunk::chunk_tokens(&doc, &tags);
        let analysis = clause::analyze_clause_tokens(&doc, &tags, &chunks);
        let span = if n == 0 {
            wf_types::Span::new(0, 0)
        } else {
            wf_types::Span::new(doc.span(0).start, doc.span(n - 1).end)
        };
        AnalyzedSentence {
            span,
            tokens: doc.to_tokens(0, n),
            tags,
            chunks,
            analysis,
        }
    }

    /// Detects named entities across all sentences of `text`.
    pub fn named_entities(&self, text: &str) -> Vec<NamedEntity> {
        let mut scratch = DocScratch::new();
        view::scan(text, &mut scratch);
        let doc = scratch.view(text);
        let sentences = sentence::split_tokens(&doc);
        let mut out = Vec::new();
        for s in &sentences {
            out.extend(ner::spot_tokens(&doc, s));
        }
        out
    }

    /// Full document annotation — sentence analyses *and* named entities —
    /// from a single tokenization pass over `text`.
    pub fn analyze_doc(&self, text: &str, scratch: &mut DocScratch) -> DocAnnotations {
        view::scan(text, scratch);
        let doc = scratch.view(text);
        let sentences = sentence::split_tokens(&doc);
        let mut entities = Vec::new();
        for s in &sentences {
            entities.extend(ner::spot_tokens(&doc, s));
        }
        let sentences = sentences
            .iter()
            .map(|s| self.analyze_span(&doc, s))
            .collect();
        DocAnnotations {
            sentences,
            entities,
        }
    }

    /// Annotates a batch of documents, reusing one scratch buffer across
    /// the whole batch so steady-state per-token allocation is amortized
    /// away. Output is order-aligned with `texts` and identical to calling
    /// [`Pipeline::analyze_doc`] per document.
    pub fn annotate_batch<S: AsRef<str>>(&self, texts: &[S]) -> Vec<DocAnnotations> {
        let mut scratch = DocScratch::new();
        texts
            .iter()
            .map(|t| self.analyze_doc(t.as_ref(), &mut scratch))
            .collect()
    }

    /// [`Pipeline::annotate_batch`] plus the batch's per-stage unit
    /// costs, for callers that attribute the work to profiler spans.
    pub fn annotate_batch_costed<S: AsRef<str>>(
        &self,
        texts: &[S],
    ) -> (Vec<DocAnnotations>, StageCosts) {
        let docs = self.annotate_batch(texts);
        let costs = StageCosts::from_annotations(&docs);
        (docs, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_analyzes_multi_sentence_text() {
        let p = Pipeline::new();
        let analyzed = p.analyze("The camera is great. The battery drains quickly.");
        assert_eq!(analyzed.len(), 2);
        assert_eq!(
            analyzed[0].analysis.clauses[0]
                .predicate
                .as_ref()
                .unwrap()
                .lemma,
            "be"
        );
        assert_eq!(
            analyzed[1].analysis.clauses[0]
                .predicate
                .as_ref()
                .unwrap()
                .lemma,
            "drain"
        );
    }

    #[test]
    fn analyze_sentence_handles_empty_input() {
        let p = Pipeline::new();
        let a = p.analyze_sentence("");
        assert!(a.tokens.is_empty());
        assert!(a.chunks.is_empty());
    }

    #[test]
    fn named_entities_via_pipeline() {
        let p = Pipeline::new();
        let es = p.named_entities("Canon and Nikon compete. Sony watches.");
        let names: Vec<&str> = es.iter().map(|e| e.text.as_str()).collect();
        assert!(names.contains(&"Canon"));
        assert!(names.contains(&"Nikon"));
        assert!(names.contains(&"Sony"));
    }

    #[test]
    fn stage_costs_follow_annotation_output() {
        let p = Pipeline::new();
        let texts = ["Canon makes cameras. Nikon competes.", ""];
        let (docs, costs) = p.annotate_batch_costed(&texts);
        assert_eq!(
            docs,
            p.annotate_batch(&texts),
            "costing never changes output"
        );
        let tokens: u64 = docs
            .iter()
            .flat_map(|d| &d.sentences)
            .map(|s| s.tokens.len() as u64)
            .sum();
        assert_eq!(costs.tokenize, tokens);
        assert_eq!(costs.pos, tokens);
        assert_eq!(costs.ner, 2, "Canon and Nikon");
        assert!(costs.chunk > 0 && costs.clause > 0);
        assert_eq!(
            costs.total(),
            costs.stages().iter().map(|(_, c)| c).sum::<u64>()
        );
    }

    #[test]
    fn lemma_helper_uses_tags() {
        let p = Pipeline::new();
        let a = p.analyze_sentence("This camera takes excellent pictures.");
        let takes = a.tokens.iter().position(|t| t.text == "takes").unwrap();
        assert_eq!(a.lemma(takes), "take");
        let pics = a.tokens.iter().position(|t| t.text == "pictures").unwrap();
        assert_eq!(a.lemma(pics), "picture");
    }
}

//! English NLP substrate for the WebFountain sentiment miner.
//!
//! The paper's pipeline depends on four language-processing miners — a
//! tokenizer, the Ratnaparkhi POS tagger, the Talent shallow parser, and a
//! capitalization-based named entity spotter. This crate re-implements all
//! of them from scratch:
//!
//! - [`tokenizer`]: offset-preserving tokenization,
//! - [`sentence`]: sentence splitting,
//! - [`pos`]: dictionary + contextual-rule POS tagging (Penn Treebank tags),
//! - [`lemma`]: rule-based lemmatization (predicate lookup key),
//! - [`chunk`]: NP/VP/PP/ADJP shallow chunking,
//! - [`clause`]: clause decomposition into SP/OP/CP/PP components,
//! - [`ner`]: capitalized-noun-phrase named entity spotting with split
//!   heuristics.
//!
//! [`Pipeline`] bundles the stages for one-call analysis of raw text.

pub mod chunk;
pub mod clause;
pub mod dict;
pub mod lemma;
pub mod ner;
pub mod pos;
pub mod sentence;
pub mod tags;
pub mod tokenizer;

pub use chunk::{Chunk, ChunkKind};
pub use clause::{Clause, Predicate, SentenceAnalysis};
pub use ner::NamedEntity;
pub use pos::PosTagger;
pub use sentence::Sentence;
pub use tags::PosTag;
pub use tokenizer::{Token, TokenKind};

/// A fully analyzed sentence: tokens (sentence-local), tags, chunks and
/// clause structure.
#[derive(Debug, Clone)]
pub struct AnalyzedSentence {
    /// Byte span of the sentence in the source document.
    pub span: wf_types::Span,
    /// The sentence's tokens (indices below are into this vector).
    pub tokens: Vec<Token>,
    /// One Penn Treebank tag per token.
    pub tags: Vec<PosTag>,
    /// Base-phrase chunks over the tokens.
    pub chunks: Vec<Chunk>,
    /// Clause decomposition.
    pub analysis: SentenceAnalysis,
}

impl AnalyzedSentence {
    /// Surface text of a chunk by index.
    pub fn chunk_text(&self, chunk_index: usize) -> String {
        self.chunks[chunk_index].text(&self.tokens)
    }

    /// Lower-cased lemma of the token at `index`.
    pub fn lemma(&self, index: usize) -> String {
        lemma::lemmatize(&self.tokens[index].lower(), self.tags[index])
    }
}

/// End-to-end text analysis pipeline: tokenize → split → tag → chunk →
/// clause-analyze.
pub struct Pipeline {
    tagger: PosTagger,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline {
            tagger: PosTagger::new(),
        }
    }

    /// Analyzes raw text into per-sentence structures.
    pub fn analyze(&self, text: &str) -> Vec<AnalyzedSentence> {
        let tokens = tokenizer::tokenize(text);
        let sentences = sentence::split_sentences(&tokens);
        sentences
            .iter()
            .map(|s| {
                let toks: Vec<Token> = s.tokens(&tokens).to_vec();
                let tags = self.tagger.tag_sentence(&toks);
                let chunks = chunk::chunk(&toks, &tags);
                let analysis = clause::analyze_clauses(&toks, &tags, &chunks);
                AnalyzedSentence {
                    span: s.span,
                    tokens: toks,
                    tags,
                    chunks,
                    analysis,
                }
            })
            .collect()
    }

    /// Analyzes a single sentence that is already isolated (no splitting).
    pub fn analyze_sentence(&self, text: &str) -> AnalyzedSentence {
        let toks = tokenizer::tokenize(text);
        let tags = self.tagger.tag_sentence(&toks);
        let chunks = chunk::chunk(&toks, &tags);
        let analysis = clause::analyze_clauses(&toks, &tags, &chunks);
        let span = if toks.is_empty() {
            wf_types::Span::new(0, 0)
        } else {
            wf_types::Span::new(toks[0].span.start, toks[toks.len() - 1].span.end)
        };
        AnalyzedSentence {
            span,
            tokens: toks,
            tags,
            chunks,
            analysis,
        }
    }

    /// Detects named entities across all sentences of `text`.
    pub fn named_entities(&self, text: &str) -> Vec<NamedEntity> {
        let tokens = tokenizer::tokenize(text);
        let sentences = sentence::split_sentences(&tokens);
        let mut out = Vec::new();
        for s in &sentences {
            out.extend(ner::spot_entities(&tokens, s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_analyzes_multi_sentence_text() {
        let p = Pipeline::new();
        let analyzed = p.analyze("The camera is great. The battery drains quickly.");
        assert_eq!(analyzed.len(), 2);
        assert_eq!(
            analyzed[0].analysis.clauses[0]
                .predicate
                .as_ref()
                .unwrap()
                .lemma,
            "be"
        );
        assert_eq!(
            analyzed[1].analysis.clauses[0]
                .predicate
                .as_ref()
                .unwrap()
                .lemma,
            "drain"
        );
    }

    #[test]
    fn analyze_sentence_handles_empty_input() {
        let p = Pipeline::new();
        let a = p.analyze_sentence("");
        assert!(a.tokens.is_empty());
        assert!(a.chunks.is_empty());
    }

    #[test]
    fn named_entities_via_pipeline() {
        let p = Pipeline::new();
        let es = p.named_entities("Canon and Nikon compete. Sony watches.");
        let names: Vec<&str> = es.iter().map(|e| e.text.as_str()).collect();
        assert!(names.contains(&"Canon"));
        assert!(names.contains(&"Nikon"));
        assert!(names.contains(&"Sony"));
    }

    #[test]
    fn lemma_helper_uses_tags() {
        let p = Pipeline::new();
        let a = p.analyze_sentence("This camera takes excellent pictures.");
        let takes = a.tokens.iter().position(|t| t.text == "takes").unwrap();
        assert_eq!(a.lemma(takes), "take");
        let pics = a.tokens.iter().position(|t| t.text == "pictures").unwrap();
        assert_eq!(a.lemma(pics), "picture");
    }
}

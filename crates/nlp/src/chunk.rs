//! Shallow phrase chunker (the Talent-parser substitute).
//!
//! Groups a tagged token stream into non-overlapping base phrases: noun
//! phrases (NP), verb phrases/groups (VP), prepositional phrases (PP, a
//! preposition plus its NP object) and adjective phrases (ADJP). These are
//! exactly the sentence components the sentiment pattern database refers to
//! (SP, OP, CP, PP), and NP chunks feed the bBNP feature-extraction
//! heuristic.

use crate::tags::PosTag;
use crate::tokenizer::Token;
use crate::view::{LoweredTokens, TokenAccess};

/// Kind of a base phrase chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkKind {
    /// Noun phrase (optionally starting with a determiner/possessive).
    NP,
    /// Verb group: auxiliaries, negation adverbs, main verb, trailing
    /// adverbs.
    VP,
    /// Prepositional phrase: `IN` + following NP (the NP tokens are part of
    /// the PP chunk; `object` records where it starts).
    PP,
    /// Adjective phrase (predicative position: "are [very vibrant]").
    ADJP,
    /// Anything not covered (punctuation, conjunctions, stray tokens).
    Other,
}

/// A chunk: a token range `[start, end)` within one sentence, with a head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    pub kind: ChunkKind,
    /// Index (into the sentence's token slice) of the first token.
    pub start: usize,
    /// One past the last token.
    pub end: usize,
    /// Index of the head token: last noun of an NP, main verb of a VP,
    /// last adjective of an ADJP, the preposition of a PP.
    pub head: usize,
    /// For PP chunks: index where the embedded object NP starts, if any.
    pub object: Option<usize>,
}

impl Chunk {
    /// Number of tokens in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The chunk's tokens borrowed from the sentence slice.
    pub fn tokens<'a>(&self, sentence: &'a [Token]) -> &'a [Token] {
        &sentence[self.start..self.end]
    }

    /// Surface text of the chunk, joined with single spaces.
    pub fn text(&self, sentence: &[Token]) -> String {
        sentence[self.start..self.end]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// True when `tag` can premodify a noun inside an NP.
fn is_np_premodifier(tag: PosTag) -> bool {
    tag.is_adjective() || matches!(tag, PosTag::CD | PosTag::VBN | PosTag::VBG)
}

/// Chunks one tagged sentence. `tokens` and `tags` must be equal length.
///
/// The grammar, applied greedily left to right:
///
/// ```text
/// NP   := (DT | PRP$ | PDT DT)? (RB? PREMOD)* NOUN+  |  PRP  |  EX
/// VP   := (MD | RB)* VERB+ RB*            (at least one verb)
/// PP   := IN NP?
/// ADJP := RB* (JJ|JJR|JJS)+               (only outside an NP)
/// ```
pub fn chunk(tokens: &[Token], tags: &[PosTag]) -> Vec<Chunk> {
    chunk_tokens(&LoweredTokens::new(tokens), tags)
}

/// Chunks one tagged sentence over any token view.
pub fn chunk_tokens<T: TokenAccess>(tokens: &T, tags: &[PosTag]) -> Vec<Chunk> {
    assert_eq!(tokens.len(), tags.len(), "tokens/tags length mismatch");
    let mut chunks = Vec::new();
    let mut i = 0;
    let n = tokens.len();
    while i < n {
        let tag = tags[i];
        // Pronoun / existential-there NP
        if matches!(tag, PosTag::PRP | PosTag::EX) {
            chunks.push(Chunk {
                kind: ChunkKind::NP,
                start: i,
                end: i + 1,
                head: i,
                object: None,
            });
            i += 1;
            continue;
        }
        // Subordinating conjunctions open a new clause rather than a PP;
        // the clause analyzer splits on them.
        if tag == PosTag::IN && is_subordinator(tokens.lower(i)) {
            chunks.push(Chunk {
                kind: ChunkKind::Other,
                start: i,
                end: i + 1,
                head: i,
                object: None,
            });
            i += 1;
            continue;
        }
        // PP: preposition + NP
        if tag == PosTag::IN {
            let prep = i;
            if let Some(np) = match_np(tags, i + 1) {
                chunks.push(Chunk {
                    kind: ChunkKind::PP,
                    start: prep,
                    end: np.1,
                    head: prep,
                    object: Some(np.0),
                });
                i = np.1;
            } else {
                chunks.push(Chunk {
                    kind: ChunkKind::PP,
                    start: prep,
                    end: prep + 1,
                    head: prep,
                    object: None,
                });
                i += 1;
            }
            continue;
        }
        // NP
        if let Some((np_start, np_end, head)) = match_np_full(tags, i) {
            chunks.push(Chunk {
                kind: ChunkKind::NP,
                start: np_start,
                end: np_end,
                head,
                object: None,
            });
            i = np_end;
            continue;
        }
        // VP: modal/adverb prefix then verbs
        if tag.is_verb() || tag == PosTag::MD || (tag.is_adverb() && starts_vp(tags, i)) {
            let start = i;
            let mut j = i;
            // prefix of modals and adverbs
            while j < n && (tags[j] == PosTag::MD || tags[j].is_adverb()) {
                j += 1;
            }
            let verb_start = j;
            while j < n && (tags[j].is_verb() || tags[j].is_adverb() || tags[j] == PosTag::TO) {
                // only continue through TO if a verb follows ("seems to work")
                if tags[j] == PosTag::TO && !(j + 1 < n && tags[j + 1].is_verb()) {
                    break;
                }
                j += 1;
            }
            // trim trailing adverbs kept inside the VP (they belong: "works
            // well"), but a trailing TO never ends a VP
            if j > verb_start {
                // head: last verb token in [start, j)
                let head = (start..j)
                    .rev()
                    .find(|&k| tags[k].is_verb())
                    .expect("VP contains a verb");
                chunks.push(Chunk {
                    kind: ChunkKind::VP,
                    start,
                    end: j,
                    head,
                    object: None,
                });
                i = j;
                continue;
            }
            // no verb after the adverb/modal prefix: fall through
        }
        // ADJP (predicative)
        if tag.is_adjective() || (tag.is_adverb() && i + 1 < n && tags[i + 1].is_adjective()) {
            let start = i;
            let mut j = i;
            while j < n && tags[j].is_adverb() {
                j += 1;
            }
            let mut head = j;
            while j < n && tags[j].is_adjective() {
                head = j;
                j += 1;
            }
            if head < j {
                chunks.push(Chunk {
                    kind: ChunkKind::ADJP,
                    start,
                    end: j,
                    head,
                    object: None,
                });
                i = j;
                continue;
            }
        }
        // Other: single token
        chunks.push(Chunk {
            kind: ChunkKind::Other,
            start: i,
            end: i + 1,
            head: i,
            object: None,
        });
        i += 1;
    }
    chunks
}

/// Subordinating conjunctions that begin a dependent clause. "that" and
/// the wh-words are handled separately; "unlike"/"like"/"as" stay
/// prepositional because the contrast rule consumes them as PPs.
pub fn is_subordinator(lower: &str) -> bool {
    matches!(
        lower,
        "although"
            | "though"
            | "because"
            | "while"
            | "whereas"
            | "unless"
            | "if"
            | "since"
            | "whether"
    )
}

/// True when the adverb at `i` is the start of a verb group (i.e. a verb or
/// modal follows within the adverb run) — e.g. "certainly offers".
fn starts_vp(tags: &[PosTag], i: usize) -> bool {
    let mut j = i;
    while j < tags.len() && tags[j].is_adverb() {
        j += 1;
    }
    j < tags.len() && (tags[j].is_verb() || tags[j] == PosTag::MD)
}

/// Matches an NP starting exactly at `i`; returns `(np_start, np_end)`.
fn match_np(tags: &[PosTag], i: usize) -> Option<(usize, usize)> {
    match_np_full(tags, i).map(|(s, e, _)| (s, e))
}

/// Matches an NP starting exactly at `i`; returns `(start, end, head)`.
fn match_np_full(tags: &[PosTag], i: usize) -> Option<(usize, usize, usize)> {
    let n = tags.len();
    if i >= n {
        return None;
    }
    if matches!(tags[i], PosTag::PRP | PosTag::EX) {
        return Some((i, i + 1, i));
    }
    let mut j = i;
    // optional predeterminer + determiner / possessive
    if j < n && tags[j] == PosTag::PDT {
        j += 1;
    }
    if j < n && matches!(tags[j], PosTag::DT | PosTag::PRPS) {
        j += 1;
    }
    // premodifiers (each optionally preceded by a degree adverb: "a very
    // good camera"); possessive nouns ("the camera's lens") also premodify
    let mut saw_noun = false;
    let mut head = j;
    loop {
        if j < n && tags[j].is_adverb() && j + 1 < n && is_np_premodifier(tags[j + 1]) {
            j += 2;
            continue;
        }
        if j < n && is_np_premodifier(tags[j]) {
            j += 1;
            continue;
        }
        if j < n && tags[j].is_noun() {
            head = j;
            saw_noun = true;
            j += 1;
            // possessive marker continues the NP: "camera 's lens"
            if j < n && tags[j] == PosTag::POS {
                j += 1;
            }
            continue;
        }
        break;
    }
    if saw_noun && j > i {
        Some((i, j, head))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::PosTagger;
    use crate::tokenizer::tokenize;

    /// Tokenize + tag + chunk one sentence; returns (kind, text) pairs.
    fn chunks_of(text: &str) -> Vec<(ChunkKind, String)> {
        let tokens = tokenize(text);
        let tagger = PosTagger::new();
        let tags = tagger.tag_sentence(&tokens);
        chunk(&tokens, &tags)
            .into_iter()
            .map(|c| (c.kind, c.text(&tokens)))
            .collect()
    }

    #[test]
    fn paper_example_svo() {
        let cs = chunks_of("This camera takes excellent pictures.");
        assert_eq!(cs[0], (ChunkKind::NP, "This camera".to_string()));
        assert_eq!(cs[1], (ChunkKind::VP, "takes".to_string()));
        assert_eq!(cs[2], (ChunkKind::NP, "excellent pictures".to_string()));
    }

    #[test]
    fn copula_with_predicative_adjective() {
        let cs = chunks_of("The colors are vibrant.");
        assert_eq!(cs[0], (ChunkKind::NP, "The colors".to_string()));
        assert_eq!(cs[1], (ChunkKind::VP, "are".to_string()));
        assert_eq!(cs[2], (ChunkKind::ADJP, "vibrant".to_string()));
    }

    #[test]
    fn passive_with_pp() {
        let cs = chunks_of("I am impressed by the picture quality.");
        assert_eq!(cs[0], (ChunkKind::NP, "I".to_string()));
        assert_eq!(cs[1], (ChunkKind::VP, "am impressed".to_string()));
        assert_eq!(cs[2], (ChunkKind::PP, "by the picture quality".to_string()));
    }

    #[test]
    fn pp_object_offset() {
        let text = "I am impressed by the picture quality.";
        let tokens = tokenize(text);
        let tags = PosTagger::new().tag_sentence(&tokens);
        let cs = chunk(&tokens, &tags);
        let pp = cs.iter().find(|c| c.kind == ChunkKind::PP).unwrap();
        assert_eq!(tokens[pp.head].text, "by");
        let obj = pp.object.unwrap();
        assert_eq!(tokens[obj].text, "the");
    }

    #[test]
    fn negated_verb_group_is_one_vp() {
        let cs = chunks_of("The camera does not require an adapter.");
        assert!(cs.contains(&(ChunkKind::VP, "does not require".to_string())));
    }

    #[test]
    fn chunks_partition_the_sentence() {
        for text in [
            "The Memory Stick support in the NR70 series is well implemented.",
            "Unlike the T series, the NR70 does not require an add-on adapter.",
            "The company offers mediocre services.",
        ] {
            let tokens = tokenize(text);
            let tags = PosTagger::new().tag_sentence(&tokens);
            let cs = chunk(&tokens, &tags);
            let mut pos = 0;
            for c in &cs {
                assert_eq!(c.start, pos, "gap before chunk in {text:?}");
                assert!(c.head >= c.start && c.head < c.end);
                pos = c.end;
            }
            assert_eq!(pos, tokens.len());
        }
    }

    #[test]
    fn np_with_degree_adverb() {
        let cs = chunks_of("It is a very good camera.");
        assert!(cs.contains(&(ChunkKind::NP, "a very good camera".to_string())));
    }

    #[test]
    fn possessive_np_stays_together() {
        let cs = chunks_of("The camera's lens is sharp.");
        assert_eq!(cs[0], (ChunkKind::NP, "The camera 's lens".to_string()));
    }

    #[test]
    fn np_head_is_last_noun() {
        let text = "The picture quality is superb.";
        let tokens = tokenize(text);
        let tags = PosTagger::new().tag_sentence(&tokens);
        let cs = chunk(&tokens, &tags);
        let np = &cs[0];
        assert_eq!(np.kind, ChunkKind::NP);
        assert_eq!(tokens[np.head].text, "quality");
    }

    #[test]
    fn infinitive_continues_verb_group() {
        let cs = chunks_of("The product fails to meet our expectations.");
        assert!(cs
            .iter()
            .any(|(k, t)| *k == ChunkKind::VP && t.contains("fails to meet")));
    }

    #[test]
    fn conjunction_is_other() {
        let cs = chunks_of("The lens and the battery are great.");
        assert!(cs.contains(&(ChunkKind::Other, "and".to_string())));
    }

    #[test]
    fn proper_noun_sequence_is_np() {
        let cs = chunks_of("Sony PDA owners love the Memory Stick expansion.");
        assert!(cs[0].0 == ChunkKind::NP);
        assert!(cs[0].1.contains("Sony"));
    }
}

//! Sentence splitting over the token stream.
//!
//! The sentiment miner's "sentiment context generally consists of the full
//! sentence that contains a subject spot", so sentence boundaries are the
//! unit of analysis throughout the system.

use crate::tokenizer::{Token, TokenKind};
use crate::view::{LoweredTokens, TokenAccess};
use wf_types::Span;

/// A sentence: a contiguous range of tokens plus its covering byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// Index of the first token of the sentence.
    pub start_token: usize,
    /// One past the index of the last token.
    pub end_token: usize,
    /// Byte span covering the sentence in the source text.
    pub span: Span,
}

impl Sentence {
    /// Number of tokens in the sentence.
    pub fn len(&self) -> usize {
        self.end_token - self.start_token
    }

    pub fn is_empty(&self) -> bool {
        self.start_token == self.end_token
    }

    /// The sentence's tokens, borrowed from the full token stream.
    pub fn tokens<'a>(&self, all: &'a [Token]) -> &'a [Token] {
        &all[self.start_token..self.end_token]
    }
}

/// Abbreviations whose trailing period does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "vs", "etc", "inc", "corp", "co", "ltd",
    "e.g", "i.e", "u.s", "u.k", "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept",
    "oct", "nov", "dec", "no", "vol", "fig", "approx", "dept", "est",
];

/// Abbreviation test over the precomputed lowercase form plus the surface
/// (the single-initial rule looks at the surface byte length).
fn is_abbreviation_lower(lower: &str, surface: &str) -> bool {
    ABBREVIATIONS.contains(&lower)
        || (surface.len() == 1 && surface.chars().all(|c| c.is_alphabetic()))
}

/// Splits a token stream into sentences (compatibility wrapper).
pub fn split_sentences(tokens: &[Token]) -> Vec<Sentence> {
    split_tokens(&LoweredTokens::new(tokens))
}

/// Splits any token view into sentences.
///
/// A sentence ends at `.`, `!` or `?` unless the period follows a known
/// abbreviation or a single initial ("Prof. Wilson"). Trailing closing
/// quotes/brackets are absorbed into the sentence.
pub fn split_tokens<T: TokenAccess>(tokens: &T) -> Vec<Sentence> {
    let mut sentences = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while i < tokens.len() {
        let ends = match tokens.text(i) {
            "!" | "?" => true,
            "." => {
                // A period ends the sentence unless the previous token is an
                // abbreviation and the next token is not clearly a sentence
                // opener (capitalized word far enough away is ambiguous; we
                // follow the conservative rule: abbreviation → no break).
                let prev_is_abbrev = i > 0
                    && tokens.kind(i - 1) == TokenKind::Word
                    && is_abbreviation_lower(tokens.lower(i - 1), tokens.text(i - 1))
                    && tokens.span(i - 1).end == tokens.span(i).start;
                !prev_is_abbrev
            }
            _ => false,
        };
        if ends {
            // absorb trailing closing quotes / brackets, plus runs of
            // terminal punctuation ("..." and "!!!" are one boundary)
            let mut end = i + 1;
            while end < tokens.len()
                && matches!(
                    tokens.text(end),
                    "\"" | "'" | ")" | "]" | "”" | "’" | "." | "!" | "?"
                )
            {
                end += 1;
            }
            push_sentence(tokens, start, end, &mut sentences);
            start = end;
            i = end;
        } else {
            i += 1;
        }
    }
    push_sentence(tokens, start, tokens.len(), &mut sentences);
    sentences
}

fn push_sentence<T: TokenAccess>(tokens: &T, start: usize, end: usize, out: &mut Vec<Sentence>) {
    if start >= end {
        return;
    }
    let span = Span::new(tokens.span(start).start, tokens.span(end - 1).end);
    out.push(Sentence {
        start_token: start,
        end_token: end,
        span,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn sentence_texts(text: &str) -> Vec<String> {
        let tokens = tokenize(text);
        split_sentences(&tokens)
            .iter()
            .map(|s| s.span.slice(text).to_string())
            .collect()
    }

    #[test]
    fn splits_on_terminal_punctuation() {
        let s = sentence_texts("The camera is great. The battery is weak! Is it worth it?");
        assert_eq!(
            s,
            vec![
                "The camera is great.",
                "The battery is weak!",
                "Is it worth it?"
            ]
        );
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s =
            sentence_texts("Prof. Wilson of American University praised the camera. It sold well.");
        assert_eq!(s.len(), 2);
        assert!(s[0].starts_with("Prof. Wilson"));
    }

    #[test]
    fn single_initials_do_not_split() {
        let s = sentence_texts("J. Smith reviewed the lens. It was sharp.");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn trailing_quote_is_absorbed() {
        let s = sentence_texts("He said \"the picture is flawless.\" Then he left.");
        assert_eq!(s.len(), 2);
        assert!(s[0].ends_with("\""));
    }

    #[test]
    fn unterminated_text_is_one_sentence() {
        let s = sentence_texts("no terminal punctuation here");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences(&[]).is_empty());
    }

    #[test]
    fn token_ranges_partition_the_stream() {
        let text = "One. Two. Three!";
        let tokens = tokenize(text);
        let sents = split_sentences(&tokens);
        let mut covered = 0;
        for s in &sents {
            assert_eq!(s.start_token, covered);
            covered = s.end_token;
        }
        assert_eq!(covered, tokens.len());
    }

    #[test]
    fn question_inside_quotes_splits_after_quote() {
        let s = sentence_texts("He asked \"is it worth it?\" Nobody answered.");
        assert_eq!(s.len(), 2, "{s:?}");
        assert!(s[0].ends_with('"'), "{s:?}");
    }

    #[test]
    fn ellipsis_is_not_three_sentences() {
        // each period is boundary-eligible but empty sentences are dropped
        let s = sentence_texts("Well... maybe.");
        assert!(s.len() <= 2, "{s:?}");
        assert!(s.iter().all(|x| !x.trim().is_empty()));
    }

    #[test]
    fn exclamation_chains() {
        let s = sentence_texts("Amazing!!! Buy it now!");
        assert!(!s.is_empty());
        assert!(s.iter().all(|x| !x.trim().is_empty()));
    }

    #[test]
    fn corporate_abbreviations() {
        let s = sentence_texts("Example Corp. announced results. Shares rose.");
        assert_eq!(s.len(), 2, "{s:?}");
    }

    #[test]
    fn decimal_numbers_do_not_split() {
        let s = sentence_texts("It costs 2.4 dollars. Cheap.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("2.4"));
    }
}

//! Named entity spotter.
//!
//! Implements the paper's simple capitalization-based spotter: it "detects
//! all capitalized noun phrases", forming candidate names from sequences of
//! capitalized tokens (plus special lowercase infix tokens such as "and" and
//! "of"), then applies split heuristics — a conjunction, preposition or
//! possessive inside a candidate indicates it must be split into multiple
//! named entities ("Prof. Wilson of American University" → "Prof. Wilson",
//! "American University").

use crate::sentence::Sentence;
use crate::tokenizer::{Token, TokenKind};
use crate::view::{LoweredTokens, TokenAccess};
use wf_types::Span;

/// A detected named entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedEntity {
    /// Canonical surface text (tokens joined with single spaces).
    pub text: String,
    /// Byte span covering the entity in the source text.
    pub span: Span,
    /// Token range (into the full token stream).
    pub start_token: usize,
    pub end_token: usize,
}

/// Lowercase tokens allowed *inside* a candidate name ("Bank of America").
/// They trigger the split heuristic unless both sides rejoin into a known
/// pattern; per the paper we split on them when they join two capitalized
/// runs that can stand alone.
fn is_infix(lower: &str) -> bool {
    matches!(lower, "of" | "and" | "for" | "the" | "de" | "van" | "von")
}

/// Titles that glue to the following name and never stand alone.
fn is_title(word: &str) -> bool {
    matches!(
        word,
        "Prof" | "Dr" | "Mr" | "Mrs" | "Ms" | "Sr" | "Jr" | "St" | "President" | "CEO"
    )
}

/// Common sentence-initial words that are capitalized only by position and
/// must not seed a candidate name on their own.
fn likely_sentence_case(lower: &str) -> bool {
    // Known lowercase dictionary word: its capitalization is positional.
    crate::dict::TagDictionary::global()
        .lookup(lower)
        .is_some_and(|tags| !tags.iter().any(|t| t.is_proper_noun()))
}

/// Detects named entities in one sentence (compatibility wrapper).
pub fn spot_entities(tokens: &[Token], sentence: &Sentence) -> Vec<NamedEntity> {
    spot_tokens(&LoweredTokens::new(tokens), sentence)
}

/// Detects named entities in one sentence of any token view. Indices in the
/// result are into the full (document-level) token stream.
pub fn spot_tokens<T: TokenAccess>(tokens: &T, sentence: &Sentence) -> Vec<NamedEntity> {
    let mut entities = Vec::new();
    let range = sentence.start_token..sentence.end_token;
    let mut i = range.start;
    while i < range.end {
        let sentence_initial = i == sentence.start_token;
        let opens = tokens.kind(i) == TokenKind::Word
            && tokens.is_capitalized(i)
            && !(sentence_initial && likely_sentence_case(tokens.lower(i)));
        if !opens {
            i += 1;
            continue;
        }
        // Extend the candidate: capitalized words, model numbers attached to
        // a name ("NR70"), infix lowercase words followed by another
        // capitalized word, and possessive/period glue.
        let start = i;
        let mut end = i + 1;
        while end < range.end {
            let capitalized_word =
                tokens.kind(end) == TokenKind::Word && tokens.is_capitalized(end);
            let infix_then_cap = tokens.kind(end) == TokenKind::Word
                && is_infix(tokens.lower(end))
                && end + 1 < range.end
                && tokens.kind(end + 1) == TokenKind::Word
                && tokens.is_capitalized(end + 1);
            let abbrev_period = tokens.text(end) == "."
                && end == start + 1
                && is_title(tokens.text(start))
                && tokens.span(end).start == tokens.span(end - 1).end;
            if capitalized_word || infix_then_cap || abbrev_period {
                end += 1;
            } else {
                break;
            }
        }
        // Apply split heuristics over [start, end).
        split_candidate(tokens, start, end, &mut entities);
        i = end;
    }
    entities
}

/// Splits a candidate token range at conjunctions, prepositions and
/// possessives, emitting one entity per piece.
fn split_candidate<T: TokenAccess>(
    tokens: &T,
    start: usize,
    end: usize,
    out: &mut Vec<NamedEntity>,
) {
    let mut piece_start = start;
    let mut k = start;
    while k < end {
        let lower = tokens.lower(k);
        let splits_here =
            (lower == "of" || lower == "and" || lower == "for") && k > piece_start && k + 1 < end;
        let possessive = lower == "'s" || lower == "’s";
        if splits_here || possessive {
            emit(tokens, piece_start, k, out);
            piece_start = k + 1;
        }
        k += 1;
    }
    emit(tokens, piece_start, end, out);
}

fn emit<T: TokenAccess>(tokens: &T, start: usize, end: usize, out: &mut Vec<NamedEntity>) {
    if start >= end {
        return;
    }
    // Drop a bare title with no name, and bare infix leftovers.
    if end - start == 1 && (is_infix(tokens.lower(start)) || tokens.text(start) == ".") {
        return;
    }
    let mut text = String::new();
    for k in start..end {
        // glue the abbreviation period without a space: "Prof."
        if k > start && tokens.text(k) != "." {
            text.push(' ');
        }
        text.push_str(tokens.text(k));
    }
    out.push(NamedEntity {
        text,
        span: Span::new(tokens.span(start).start, tokens.span(end - 1).end),
        start_token: start,
        end_token: end,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentence::split_sentences;
    use crate::tokenizer::tokenize;

    fn entities(text: &str) -> Vec<String> {
        let tokens = tokenize(text);
        let sents = split_sentences(&tokens);
        let mut out = Vec::new();
        for s in &sents {
            out.extend(spot_entities(&tokens, s).into_iter().map(|e| e.text));
        }
        out
    }

    #[test]
    fn paper_split_example() {
        let es = entities("We met Prof. Wilson of American University yesterday.");
        assert!(es.contains(&"Prof. Wilson".to_string()), "{es:?}");
        assert!(es.contains(&"American University".to_string()), "{es:?}");
    }

    #[test]
    fn simple_brand_names() {
        let es = entities("The Sony camera beats the Kodak model.");
        assert_eq!(es, vec!["Sony", "Kodak"]);
    }

    #[test]
    fn multiword_product_names() {
        let es = entities("I bought the Canon PowerShot yesterday.");
        assert!(es.contains(&"Canon PowerShot".to_string()));
    }

    #[test]
    fn model_numbers_with_digits() {
        let es = entities("The NR70 series is equipped with Memory Stick expansion.");
        assert!(es.iter().any(|e| e.contains("NR70")), "{es:?}");
    }

    #[test]
    fn conjunction_splits() {
        let es = entities("A deal between Exxon and Chevron was announced.");
        assert!(es.contains(&"Exxon".to_string()));
        assert!(es.contains(&"Chevron".to_string()));
        assert!(!es.iter().any(|e| e.contains("and")), "{es:?}");
    }

    #[test]
    fn possessive_splits() {
        let es = entities("We reviewed Sony's PlayStation lineup.");
        assert!(es.contains(&"Sony".to_string()), "{es:?}");
        assert!(es.contains(&"PlayStation".to_string()), "{es:?}");
    }

    #[test]
    fn sentence_initial_common_word_is_not_entity() {
        let es = entities("The camera is great. Cameras are fun.");
        assert!(es.is_empty(), "{es:?}");
    }

    #[test]
    fn sentence_initial_proper_name_is_entity() {
        let es = entities("Zorblax announced a new camera.");
        assert_eq!(es, vec!["Zorblax"]);
    }

    #[test]
    fn infix_of_kept_when_not_splittable() {
        // "of" at the very start of a candidate cannot split; "Bank of
        // America" style names split per the paper's heuristic into two
        // pieces — verify we at least recover both sides.
        let es = entities("She works at Bank of America now.");
        assert!(es.contains(&"Bank".to_string()) || es.contains(&"Bank of America".to_string()));
        assert!(es.contains(&"America".to_string()) || es.contains(&"Bank of America".to_string()));
    }

    #[test]
    fn spans_point_into_source() {
        let text = "The Nikon D100 impressed everyone.";
        let tokens = tokenize(text);
        let sents = split_sentences(&tokens);
        let es = spot_entities(&tokens, &sents[0]);
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].span.slice(text), "Nikon D100");
    }
}

//! Penn Treebank part-of-speech tag set.
//!
//! The paper's pipeline is defined in terms of Penn Treebank tags (Marcus et
//! al. 1993): the bBNP feature-extraction heuristic matches `NN`/`JJ`
//! patterns, the sentiment lexicon entries carry a required tag, and the
//! shallow parser chunks over tag sequences.

use std::fmt;
use std::str::FromStr;

/// Penn Treebank POS tag (plus a few punctuation tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(clippy::upper_case_acronyms)]
pub enum PosTag {
    /// Coordinating conjunction (and, or, but)
    CC,
    /// Cardinal number
    CD,
    /// Determiner (the, a, this)
    DT,
    /// Existential "there"
    EX,
    /// Foreign word
    FW,
    /// Preposition / subordinating conjunction
    IN,
    /// Adjective
    JJ,
    /// Comparative adjective
    JJR,
    /// Superlative adjective
    JJS,
    /// Modal (can, should)
    MD,
    /// Singular or mass noun
    NN,
    /// Plural noun
    NNS,
    /// Singular proper noun
    NNP,
    /// Plural proper noun
    NNPS,
    /// Predeterminer (all, both)
    PDT,
    /// Possessive ending ('s)
    POS,
    /// Personal pronoun
    PRP,
    /// Possessive pronoun (my, its)
    PRPS,
    /// Adverb
    RB,
    /// Comparative adverb
    RBR,
    /// Superlative adverb
    RBS,
    /// Particle (up, off in phrasal verbs)
    RP,
    /// "to"
    TO,
    /// Interjection
    UH,
    /// Verb, base form
    VB,
    /// Verb, past tense
    VBD,
    /// Verb, gerund / present participle
    VBG,
    /// Verb, past participle
    VBN,
    /// Verb, non-3rd person singular present
    VBP,
    /// Verb, 3rd person singular present
    VBZ,
    /// Wh-determiner (which)
    WDT,
    /// Wh-pronoun (who)
    WP,
    /// Wh-adverb (when, how)
    WRB,
    /// Sentence-final punctuation (. ! ?)
    Period,
    /// Comma
    Comma,
    /// Colon / semicolon / dash
    Colon,
    /// Quotation marks, brackets, other symbols
    Sym,
}

impl PosTag {
    /// True for any noun tag: NN, NNS, NNP, NNPS.
    pub fn is_noun(self) -> bool {
        matches!(self, PosTag::NN | PosTag::NNS | PosTag::NNP | PosTag::NNPS)
    }

    /// True for common nouns only: NN, NNS (used by the bBNP heuristic,
    /// which matches `NN` patterns per the paper).
    pub fn is_common_noun(self) -> bool {
        matches!(self, PosTag::NN | PosTag::NNS)
    }

    /// True for proper nouns: NNP, NNPS.
    pub fn is_proper_noun(self) -> bool {
        matches!(self, PosTag::NNP | PosTag::NNPS)
    }

    /// True for any adjective tag: JJ, JJR, JJS.
    pub fn is_adjective(self) -> bool {
        matches!(self, PosTag::JJ | PosTag::JJR | PosTag::JJS)
    }

    /// True for any verb tag: VB, VBD, VBG, VBN, VBP, VBZ.
    pub fn is_verb(self) -> bool {
        matches!(
            self,
            PosTag::VB | PosTag::VBD | PosTag::VBG | PosTag::VBN | PosTag::VBP | PosTag::VBZ
        )
    }

    /// True for a finite verb form that can head a main clause.
    pub fn is_finite_verb(self) -> bool {
        matches!(self, PosTag::VBD | PosTag::VBP | PosTag::VBZ | PosTag::MD)
    }

    /// True for any adverb tag: RB, RBR, RBS.
    pub fn is_adverb(self) -> bool {
        matches!(self, PosTag::RB | PosTag::RBR | PosTag::RBS)
    }

    /// True for punctuation tags.
    pub fn is_punct(self) -> bool {
        matches!(
            self,
            PosTag::Period | PosTag::Comma | PosTag::Colon | PosTag::Sym
        )
    }

    /// Canonical Penn Treebank string for the tag.
    pub fn as_str(self) -> &'static str {
        match self {
            PosTag::CC => "CC",
            PosTag::CD => "CD",
            PosTag::DT => "DT",
            PosTag::EX => "EX",
            PosTag::FW => "FW",
            PosTag::IN => "IN",
            PosTag::JJ => "JJ",
            PosTag::JJR => "JJR",
            PosTag::JJS => "JJS",
            PosTag::MD => "MD",
            PosTag::NN => "NN",
            PosTag::NNS => "NNS",
            PosTag::NNP => "NNP",
            PosTag::NNPS => "NNPS",
            PosTag::PDT => "PDT",
            PosTag::POS => "POS",
            PosTag::PRP => "PRP",
            PosTag::PRPS => "PRP$",
            PosTag::RB => "RB",
            PosTag::RBR => "RBR",
            PosTag::RBS => "RBS",
            PosTag::RP => "RP",
            PosTag::TO => "TO",
            PosTag::UH => "UH",
            PosTag::VB => "VB",
            PosTag::VBD => "VBD",
            PosTag::VBG => "VBG",
            PosTag::VBN => "VBN",
            PosTag::VBP => "VBP",
            PosTag::VBZ => "VBZ",
            PosTag::WDT => "WDT",
            PosTag::WP => "WP",
            PosTag::WRB => "WRB",
            PosTag::Period => ".",
            PosTag::Comma => ",",
            PosTag::Colon => ":",
            PosTag::Sym => "SYM",
        }
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for PosTag {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "CC" => PosTag::CC,
            "CD" => PosTag::CD,
            "DT" => PosTag::DT,
            "EX" => PosTag::EX,
            "FW" => PosTag::FW,
            "IN" => PosTag::IN,
            "JJ" => PosTag::JJ,
            "JJR" => PosTag::JJR,
            "JJS" => PosTag::JJS,
            "MD" => PosTag::MD,
            "NN" => PosTag::NN,
            "NNS" => PosTag::NNS,
            "NNP" => PosTag::NNP,
            "NNPS" => PosTag::NNPS,
            "PDT" => PosTag::PDT,
            "POS" => PosTag::POS,
            "PRP" => PosTag::PRP,
            "PRP$" => PosTag::PRPS,
            "RB" => PosTag::RB,
            "RBR" => PosTag::RBR,
            "RBS" => PosTag::RBS,
            "RP" => PosTag::RP,
            "TO" => PosTag::TO,
            "UH" => PosTag::UH,
            "VB" => PosTag::VB,
            "VBD" => PosTag::VBD,
            "VBG" => PosTag::VBG,
            "VBN" => PosTag::VBN,
            "VBP" => PosTag::VBP,
            "VBZ" => PosTag::VBZ,
            "WDT" => PosTag::WDT,
            "WP" => PosTag::WP,
            "WRB" => PosTag::WRB,
            "." => PosTag::Period,
            "," => PosTag::Comma,
            ":" => PosTag::Colon,
            "SYM" => PosTag::Sym,
            other => return Err(format!("unknown POS tag: {other:?}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[PosTag] = &[
        PosTag::CC,
        PosTag::CD,
        PosTag::DT,
        PosTag::EX,
        PosTag::FW,
        PosTag::IN,
        PosTag::JJ,
        PosTag::JJR,
        PosTag::JJS,
        PosTag::MD,
        PosTag::NN,
        PosTag::NNS,
        PosTag::NNP,
        PosTag::NNPS,
        PosTag::PDT,
        PosTag::POS,
        PosTag::PRP,
        PosTag::PRPS,
        PosTag::RB,
        PosTag::RBR,
        PosTag::RBS,
        PosTag::RP,
        PosTag::TO,
        PosTag::UH,
        PosTag::VB,
        PosTag::VBD,
        PosTag::VBG,
        PosTag::VBN,
        PosTag::VBP,
        PosTag::VBZ,
        PosTag::WDT,
        PosTag::WP,
        PosTag::WRB,
        PosTag::Period,
        PosTag::Comma,
        PosTag::Colon,
        PosTag::Sym,
    ];

    #[test]
    fn string_round_trip_for_every_tag() {
        for &tag in ALL {
            assert_eq!(tag.as_str().parse::<PosTag>().unwrap(), tag);
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!("XYZ".parse::<PosTag>().is_err());
    }

    #[test]
    fn class_predicates() {
        assert!(PosTag::NN.is_noun());
        assert!(PosTag::NNP.is_noun());
        assert!(PosTag::NN.is_common_noun());
        assert!(!PosTag::NNP.is_common_noun());
        assert!(PosTag::NNP.is_proper_noun());
        assert!(PosTag::JJR.is_adjective());
        assert!(PosTag::VBZ.is_verb());
        assert!(PosTag::VBZ.is_finite_verb());
        assert!(!PosTag::VBN.is_finite_verb());
        assert!(PosTag::RBS.is_adverb());
        assert!(PosTag::Comma.is_punct());
        assert!(!PosTag::NN.is_punct());
    }

    #[test]
    fn prps_displays_with_dollar() {
        assert_eq!(PosTag::PRPS.to_string(), "PRP$");
    }
}

//! Part-of-speech tagger.
//!
//! The paper uses the Ratnaparkhi maximum-entropy tagger; as a substitute we
//! implement a dictionary + suffix-guess + contextual-rule tagger in the
//! style of Brill (1995). The initial tag is the dictionary's most likely
//! tag (or a suffix-based guess for unknown words); a fixed sequence of
//! contextual repair rules then fixes the classic ambiguities that matter to
//! this pipeline (noun/verb, VBD/VBN, "that", base verbs after TO/MD).
//!
//! A repair rule may only move a known word to a tag its dictionary entry
//! allows, which keeps the rules safe to apply unconditionally.

use crate::dict::TagDictionary;
use crate::tags::PosTag;
use crate::tokenizer::{Token, TokenKind};
use crate::view::{LoweredTokens, TokenAccess};
use std::collections::HashMap;

/// Dictionary-driven rule-based POS tagger.
pub struct PosTagger {
    dict: &'static TagDictionary,
}

impl Default for PosTagger {
    fn default() -> Self {
        Self::new()
    }
}

impl PosTagger {
    /// Creates a tagger over the global tag dictionary.
    pub fn new() -> Self {
        PosTagger {
            dict: TagDictionary::global(),
        }
    }

    /// Tags one sentence worth of owned tokens (compatibility wrapper).
    pub fn tag_sentence(&self, tokens: &[Token]) -> Vec<PosTag> {
        self.tag_tokens(&LoweredTokens::new(tokens))
    }

    /// Tags one sentence over any token view; allocation-free per token.
    ///
    /// Each token's dictionary entry is looked up exactly once: the initial
    /// pass and every contextual rule share the memoized entry, so the hot
    /// path hashes each word form a single time instead of once per rule.
    pub fn tag_tokens<T: TokenAccess>(&self, tokens: &T) -> Vec<PosTag> {
        // Batch-only memo over the global dictionary: word forms repeat
        // heavily across a corpus, and the FNV-keyed cache makes the repeat
        // lookups several times cheaper than re-hashing with SipHash. The
        // dictionary is immutable and 'static, so cached entries never go
        // stale. Capped to stay bounded on adversarial vocabularies.
        const CACHE_CAP: usize = 16384;
        thread_local! {
            static DICT_ENTRIES: std::cell::RefCell<
                HashMap<String, Option<&'static [PosTag]>, crate::lemma::FnvBuild>,
            > = std::cell::RefCell::new(HashMap::default());
            /// Pooled per-sentence entry buffer (the dictionary is 'static,
            /// so the borrows it holds never dangle).
            static ENTRIES_BUF: std::cell::Cell<Vec<Option<&'static [PosTag]>>> =
                const { std::cell::Cell::new(Vec::new()) };
        }
        let mut entries = ENTRIES_BUF.take();
        entries.clear();
        DICT_ENTRIES.with(|cache| {
            let mut cache = cache.borrow_mut();
            entries.extend((0..tokens.len()).map(|i| match tokens.kind(i) {
                TokenKind::Word => {
                    let lower = tokens.lower(i);
                    if let Some(&entry) = cache.get(lower) {
                        entry
                    } else {
                        let entry = self.dict.lookup(lower);
                        if cache.len() >= CACHE_CAP {
                            cache.clear();
                        }
                        cache.insert(lower.to_string(), entry);
                        entry
                    }
                }
                _ => None,
            }));
        });
        let mut tags: Vec<PosTag> = (0..tokens.len())
            .map(|i| self.initial_tag(tokens, entries[i], i, i == 0))
            .collect();
        self.apply_contextual_rules(tokens, &entries, &mut tags);
        ENTRIES_BUF.set(entries);
        tags
    }

    /// Initial tag assignment from surface form and dictionary.
    fn initial_tag<T: TokenAccess>(
        &self,
        tokens: &T,
        entry: Option<&[PosTag]>,
        i: usize,
        sentence_initial: bool,
    ) -> PosTag {
        match tokens.kind(i) {
            TokenKind::Number => return PosTag::CD,
            TokenKind::Punct => return punct_tag(tokens.text(i)),
            TokenKind::Word => {}
        }
        if let Some(tags) = entry {
            // Known word: most likely tag — but a capitalized known word in
            // the middle of a sentence that is capitalized in the source is
            // more likely a proper-noun use ("Apple offers...") only when
            // the dictionary does not know it; known words keep their tag.
            return tags[0];
        }
        // Unknown word: capitalization dominates.
        if tokens.is_capitalized(i) && !sentence_initial {
            return PosTag::NNP;
        }
        if sentence_initial && tokens.is_all_caps(i) && tokens.text(i).len() > 1 {
            return PosTag::NNP;
        }
        guess_by_suffix(tokens.lower(i))
    }

    /// Contextual repair rules, Brill-style. Applied in order, twice, so a
    /// correction can enable a later rule on the second pass; a pass that
    /// changes nothing short-circuits the second, identical pass. `entries`
    /// is the per-token memoized dictionary entry from
    /// [`PosTagger::tag_tokens`].
    fn apply_contextual_rules<T: TokenAccess>(
        &self,
        tokens: &T,
        entries: &[Option<&[PosTag]>],
        tags: &mut [PosTag],
    ) {
        for _pass in 0..2 {
            let mut changed = false;
            for i in 0..tokens.len() {
                let lower = tokens.lower(i);
                let entry = entries[i];
                let prev = previous_non_adverb(tags, i);
                let cur = tags[i];

                // R1: after a determiner / possessive / adjective / cardinal,
                // a verb-tagged word that can be a noun is a noun.
                if let Some(p) = prev {
                    if matches!(p, PosTag::DT | PosTag::PRPS | PosTag::JJ | PosTag::CD)
                        && cur.is_verb()
                    {
                        if entry.is_some_and(|t| t.contains(&PosTag::NN)) {
                            changed = true;
                            tags[i] = PosTag::NN;
                            continue;
                        }
                        if entry.is_some_and(|t| t.contains(&PosTag::NNS)) {
                            changed = true;
                            tags[i] = PosTag::NNS;
                            continue;
                        }
                    }
                }

                // R2/R3: base verb after TO or a modal.
                if let Some(p) = prev {
                    if matches!(p, PosTag::TO | PosTag::MD)
                        && (cur.is_verb() || cur.is_noun())
                        && entry.is_some_and(|t| t.contains(&PosTag::VB))
                    {
                        changed = true;
                        tags[i] = PosTag::VB;
                        continue;
                    }
                }

                // R4: noun-tagged word ending in "s" after a noun/pronoun,
                // followed by the start of a noun phrase, is a 3sg verb.
                if matches!(cur, PosTag::NN | PosTag::NNS)
                    && lower.ends_with('s')
                    && !lower.ends_with("ss")
                {
                    let prev_is_subject = prev.is_some_and(|p| {
                        matches!(p, PosTag::PRP | PosTag::NN | PosTag::NNS | PosTag::NNP)
                    });
                    let next_opens_np = tags.get(i + 1).is_some_and(|&n| {
                        matches!(n, PosTag::DT | PosTag::PRPS | PosTag::CD)
                            || n.is_adjective()
                            || n.is_noun()
                            || n.is_adverb()
                    });
                    let allowed = entry.is_none_or(|t| t.contains(&PosTag::VBZ));
                    if prev_is_subject && next_opens_np && allowed {
                        changed = true;
                        tags[i] = PosTag::VBZ;
                        continue;
                    }
                }

                // R5: noun-tagged word after a plural noun or pronoun that
                // the dictionary also lists as VBP is a present-tense verb
                // when followed by NP/adverb/preposition material.
                if cur == PosTag::NN && entry.is_some_and(|t| t.contains(&PosTag::VBP)) {
                    let prev_is_plural_subject =
                        prev.is_some_and(|p| matches!(p, PosTag::PRP | PosTag::NNS | PosTag::NNPS));
                    if prev_is_plural_subject {
                        changed = true;
                        tags[i] = PosTag::VBP;
                        continue;
                    }
                }

                // R6: "that" right after a verb is a complementizer (IN).
                if lower == "that" && prev.is_some_and(|p| p.is_verb()) {
                    changed = true;
                    tags[i] = PosTag::IN;
                    continue;
                }

                // R7: VBD/VBN disambiguation by auxiliary lookback.
                if matches!(cur, PosTag::VBD | PosTag::VBN)
                    && entry.is_none_or(|t| t.contains(&PosTag::VBD))
                    && entry.is_none_or(|t| t.contains(&PosTag::VBN))
                {
                    if has_aux_before(tokens, tags, i) {
                        changed = true;
                        tags[i] = PosTag::VBN;
                    } else if prev.is_some_and(|p| {
                        matches!(p, PosTag::PRP | PosTag::NNP) || p.is_common_noun()
                    }) {
                        changed = true;
                        tags[i] = PosTag::VBD;
                    }
                    continue;
                }

                // R8: possessive 's after a noun, verbal 's otherwise.
                if (lower == "'s" || lower == "’s") && prev.is_some_and(|p| !p.is_noun()) {
                    changed = true;
                    tags[i] = PosTag::VBZ;
                    continue;
                }
            }
            // A pass that rewrote nothing leaves the tags exactly as it
            // found them, so the next pass would be the identity — skip it.
            if !changed {
                break;
            }
        }
    }
}

/// The nearest preceding tag, skipping adverbs (so "does not require" sees
/// MD→VB through the negation).
fn previous_non_adverb(tags: &[PosTag], i: usize) -> Option<PosTag> {
    tags[..i].iter().rev().copied().find(|t| !t.is_adverb())
}

/// True when a form of be/have (or a modal + be) appears within the three
/// non-adverb tokens before `i` — the passive/perfect auxiliary window.
fn has_aux_before<T: TokenAccess>(tokens: &T, tags: &[PosTag], i: usize) -> bool {
    let mut seen = 0;
    for j in (0..i).rev() {
        if tags[j].is_adverb() {
            continue;
        }
        let lower = tokens.lower(j);
        if matches!(
            lower,
            "be" | "am"
                | "is"
                | "are"
                | "was"
                | "were"
                | "been"
                | "being"
                | "have"
                | "has"
                | "had"
                | "having"
                | "'ve"
                | "get"
                | "gets"
                | "got"
                | "getting"
        ) {
            return true;
        }
        seen += 1;
        if seen >= 3 || !tags[j].is_verb() {
            return false;
        }
    }
    false
}

/// Tag for a punctuation token.
fn punct_tag(text: &str) -> PosTag {
    match text {
        "." | "!" | "?" => PosTag::Period,
        "," => PosTag::Comma,
        ":" | ";" | "-" | "–" | "—" => PosTag::Colon,
        _ => PosTag::Sym,
    }
}

/// Suffix-based tag guess for unknown lower-case words.
fn guess_by_suffix(lower: &str) -> PosTag {
    const NOUN_SUFFIXES: &[&str] = &[
        "tion", "sion", "ment", "ness", "ity", "ance", "ence", "ship", "ism", "ware", "hood",
        "age", "ery",
    ];
    const ADJ_SUFFIXES: &[&str] = &[
        "ous", "ful", "ive", "able", "ible", "ish", "less", "ant", "ic", "ary",
    ];
    if lower.ends_with("ly") {
        return PosTag::RB;
    }
    if lower.ends_with("ing") && lower.len() > 4 {
        return PosTag::VBG;
    }
    if lower.ends_with("ed") && lower.len() > 3 {
        return PosTag::VBN;
    }
    for s in NOUN_SUFFIXES {
        if lower.ends_with(s) {
            return PosTag::NN;
        }
    }
    for s in ADJ_SUFFIXES {
        if lower.ends_with(s) {
            return PosTag::JJ;
        }
    }
    if lower.ends_with("est") && lower.len() > 4 {
        return PosTag::JJS;
    }
    if lower.ends_with('s') && !lower.ends_with("ss") && lower.len() > 2 {
        return PosTag::NNS;
    }
    PosTag::NN
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentence::split_sentences;
    use crate::tokenizer::tokenize;

    /// Tags a single-sentence text and returns (surface, tag) pairs.
    fn tag(text: &str) -> Vec<(String, PosTag)> {
        let tokens = tokenize(text);
        let sents = split_sentences(&tokens);
        assert_eq!(sents.len(), 1, "test text must be one sentence: {text}");
        let tagger = PosTagger::new();
        let tags = tagger.tag_sentence(sents[0].tokens(&tokens));
        tokens.into_iter().map(|t| t.text).zip(tags).collect()
    }

    fn tag_of(text: &str, word: &str) -> PosTag {
        tag(text)
            .into_iter()
            .find(|(w, _)| w == word)
            .unwrap_or_else(|| panic!("{word} not in {text}"))
            .1
    }

    #[test]
    fn paper_example_camera_takes_pictures() {
        let tagged = tag("This camera takes excellent pictures.");
        assert_eq!(tagged[0].1, PosTag::DT);
        assert_eq!(tagged[1].1, PosTag::NN);
        assert_eq!(tagged[2].1, PosTag::VBZ);
        assert_eq!(tagged[3].1, PosTag::JJ);
        assert_eq!(tagged[4].1, PosTag::NNS);
    }

    #[test]
    fn copula_plus_adjective() {
        assert_eq!(tag_of("The colors are vibrant.", "are"), PosTag::VBP);
        assert_eq!(tag_of("The colors are vibrant.", "vibrant"), PosTag::JJ);
    }

    #[test]
    fn passive_participle_after_be() {
        assert_eq!(
            tag_of("I am impressed by the picture quality.", "impressed"),
            PosTag::VBN
        );
    }

    #[test]
    fn simple_past_without_aux() {
        assert_eq!(tag_of("The lens impressed me.", "impressed"), PosTag::VBD);
    }

    #[test]
    fn base_verb_after_modal_and_to() {
        assert_eq!(tag_of("It can focus quickly.", "focus"), PosTag::VB);
        assert_eq!(tag_of("I want to review it.", "review"), PosTag::VB);
    }

    #[test]
    fn noun_after_determiner_even_if_verbish() {
        assert_eq!(tag_of("The review was fair.", "review"), PosTag::NN);
        assert_eq!(tag_of("Their support is great.", "support"), PosTag::NN);
    }

    #[test]
    fn present_plural_verb_after_pronoun() {
        assert_eq!(tag_of("They work well.", "work"), PosTag::VBP);
    }

    #[test]
    fn negated_verb_keeps_base_form() {
        let tagged = tag("The camera does not require an adapter.");
        assert_eq!(
            tag_of("The camera does not require an adapter.", "not"),
            PosTag::RB
        );
        let require = tagged.iter().find(|(w, _)| w == "require").unwrap();
        assert_eq!(require.1, PosTag::VB);
    }

    #[test]
    fn unknown_capitalized_word_is_proper_noun() {
        assert_eq!(
            tag_of("The Zorblax camera is fine.", "Zorblax"),
            PosTag::NNP
        );
    }

    #[test]
    fn unknown_suffix_guesses() {
        assert_eq!(guess_by_suffix("frobulation"), PosTag::NN);
        assert_eq!(guess_by_suffix("zorptastic"), PosTag::JJ);
        assert_eq!(guess_by_suffix("blorficly"), PosTag::RB);
        assert_eq!(guess_by_suffix("zorping"), PosTag::VBG);
        assert_eq!(guess_by_suffix("zorped"), PosTag::VBN);
        assert_eq!(guess_by_suffix("widgets"), PosTag::NNS);
        assert_eq!(guess_by_suffix("blorf"), PosTag::NN);
    }

    #[test]
    fn that_as_complementizer_after_verb() {
        assert_eq!(
            tag_of("I think that the camera is great.", "that"),
            PosTag::IN
        );
        assert_eq!(tag_of("That camera is great.", "That"), PosTag::DT);
    }

    #[test]
    fn numbers_are_cd() {
        assert_eq!(tag_of("It has 72 modes.", "72"), PosTag::CD);
    }

    #[test]
    fn possessive_clitic() {
        assert_eq!(tag_of("The camera's lens is sharp.", "'s"), PosTag::POS);
        assert_eq!(tag_of("It's a great camera.", "'s"), PosTag::VBZ);
    }

    #[test]
    fn offers_is_vbz_in_context() {
        assert_eq!(
            tag_of("The company offers mediocre services.", "offers"),
            PosTag::VBZ
        );
    }

    #[test]
    fn denominal_verb_after_singular_noun() {
        // "lacks" is a VBZ in the dictionary via the verb list
        assert_eq!(
            tag_of("The camera lacks a viewfinder.", "lacks"),
            PosTag::VBZ
        );
    }
}

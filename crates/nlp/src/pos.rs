//! Part-of-speech tagger.
//!
//! The paper uses the Ratnaparkhi maximum-entropy tagger; as a substitute we
//! implement a dictionary + suffix-guess + contextual-rule tagger in the
//! style of Brill (1995). The initial tag is the dictionary's most likely
//! tag (or a suffix-based guess for unknown words); a fixed sequence of
//! contextual repair rules then fixes the classic ambiguities that matter to
//! this pipeline (noun/verb, VBD/VBN, "that", base verbs after TO/MD).
//!
//! A repair rule may only move a known word to a tag its dictionary entry
//! allows, which keeps the rules safe to apply unconditionally.

use crate::dict::TagDictionary;
use crate::tags::PosTag;
use crate::tokenizer::{Token, TokenKind};

/// Dictionary-driven rule-based POS tagger.
pub struct PosTagger {
    dict: &'static TagDictionary,
}

impl Default for PosTagger {
    fn default() -> Self {
        Self::new()
    }
}

impl PosTagger {
    /// Creates a tagger over the global tag dictionary.
    pub fn new() -> Self {
        PosTagger {
            dict: TagDictionary::global(),
        }
    }

    /// Tags one sentence worth of tokens.
    pub fn tag_sentence(&self, tokens: &[Token]) -> Vec<PosTag> {
        let mut tags: Vec<PosTag> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| self.initial_tag(t, i == 0))
            .collect();
        self.apply_contextual_rules(tokens, &mut tags);
        tags
    }

    /// Initial tag assignment from surface form and dictionary.
    fn initial_tag(&self, token: &Token, sentence_initial: bool) -> PosTag {
        match token.kind {
            TokenKind::Number => return PosTag::CD,
            TokenKind::Punct => return punct_tag(&token.text),
            TokenKind::Word => {}
        }
        let lower = token.lower();
        if let Some(tags) = self.dict.lookup(&lower) {
            // Known word: most likely tag — but a capitalized known word in
            // the middle of a sentence that is capitalized in the source is
            // more likely a proper-noun use ("Apple offers...") only when
            // the dictionary does not know it; known words keep their tag.
            return tags[0];
        }
        // Unknown word: capitalization dominates.
        if token.is_capitalized() && !sentence_initial {
            return PosTag::NNP;
        }
        if sentence_initial && token.is_all_caps() && token.text.len() > 1 {
            return PosTag::NNP;
        }
        guess_by_suffix(&lower)
    }

    /// Contextual repair rules, Brill-style. Applied in order, twice, so a
    /// correction can enable a later rule on the second pass.
    fn apply_contextual_rules(&self, tokens: &[Token], tags: &mut [PosTag]) {
        for _pass in 0..2 {
            for i in 0..tokens.len() {
                let lower = tokens[i].lower();
                let prev = previous_non_adverb(tags, i);
                let cur = tags[i];

                // R1: after a determiner / possessive / adjective / cardinal,
                // a verb-tagged word that can be a noun is a noun.
                if let Some(p) = prev {
                    if matches!(p, PosTag::DT | PosTag::PRPS | PosTag::JJ | PosTag::CD)
                        && cur.is_verb()
                    {
                        if self.dict.allows(&lower, PosTag::NN)
                            && self
                                .dict
                                .lookup(&lower)
                                .is_some_and(|t| t.contains(&PosTag::NN))
                        {
                            tags[i] = PosTag::NN;
                            continue;
                        }
                        if self
                            .dict
                            .lookup(&lower)
                            .is_some_and(|t| t.contains(&PosTag::NNS))
                        {
                            tags[i] = PosTag::NNS;
                            continue;
                        }
                    }
                }

                // R2/R3: base verb after TO or a modal.
                if let Some(p) = prev {
                    if matches!(p, PosTag::TO | PosTag::MD)
                        && (cur.is_verb() || cur.is_noun())
                        && self
                            .dict
                            .lookup(&lower)
                            .is_some_and(|t| t.contains(&PosTag::VB))
                    {
                        tags[i] = PosTag::VB;
                        continue;
                    }
                }

                // R4: noun-tagged word ending in "s" after a noun/pronoun,
                // followed by the start of a noun phrase, is a 3sg verb.
                if matches!(cur, PosTag::NN | PosTag::NNS)
                    && lower.ends_with('s')
                    && !lower.ends_with("ss")
                {
                    let prev_is_subject = prev.is_some_and(|p| {
                        matches!(p, PosTag::PRP | PosTag::NN | PosTag::NNS | PosTag::NNP)
                    });
                    let next_opens_np = tags.get(i + 1).is_some_and(|&n| {
                        matches!(n, PosTag::DT | PosTag::PRPS | PosTag::CD)
                            || n.is_adjective()
                            || n.is_noun()
                            || n.is_adverb()
                    });
                    let allowed = match self.dict.lookup(&lower) {
                        Some(t) => t.contains(&PosTag::VBZ),
                        None => true,
                    };
                    if prev_is_subject && next_opens_np && allowed {
                        tags[i] = PosTag::VBZ;
                        continue;
                    }
                }

                // R5: noun-tagged word after a plural noun or pronoun that
                // the dictionary also lists as VBP is a present-tense verb
                // when followed by NP/adverb/preposition material.
                if cur == PosTag::NN
                    && self
                        .dict
                        .lookup(&lower)
                        .is_some_and(|t| t.contains(&PosTag::VBP))
                {
                    let prev_is_plural_subject =
                        prev.is_some_and(|p| matches!(p, PosTag::PRP | PosTag::NNS | PosTag::NNPS));
                    if prev_is_plural_subject {
                        tags[i] = PosTag::VBP;
                        continue;
                    }
                }

                // R6: "that" right after a verb is a complementizer (IN).
                if lower == "that" && prev.is_some_and(|p| p.is_verb()) {
                    tags[i] = PosTag::IN;
                    continue;
                }

                // R7: VBD/VBN disambiguation by auxiliary lookback.
                if matches!(cur, PosTag::VBD | PosTag::VBN)
                    && self.dict.allows(&lower, PosTag::VBD)
                    && self.dict.allows(&lower, PosTag::VBN)
                {
                    if has_aux_before(tokens, tags, i) {
                        tags[i] = PosTag::VBN;
                    } else if prev.is_some_and(|p| {
                        matches!(p, PosTag::PRP | PosTag::NNP) || p.is_common_noun()
                    }) {
                        tags[i] = PosTag::VBD;
                    }
                    continue;
                }

                // R8: possessive 's after a noun, verbal 's otherwise.
                if (lower == "'s" || lower == "’s") && prev.is_some_and(|p| !p.is_noun()) {
                    tags[i] = PosTag::VBZ;
                    continue;
                }
            }
        }
    }
}

/// The nearest preceding tag, skipping adverbs (so "does not require" sees
/// MD→VB through the negation).
fn previous_non_adverb(tags: &[PosTag], i: usize) -> Option<PosTag> {
    tags[..i].iter().rev().copied().find(|t| !t.is_adverb())
}

/// True when a form of be/have (or a modal + be) appears within the three
/// non-adverb tokens before `i` — the passive/perfect auxiliary window.
fn has_aux_before(tokens: &[Token], tags: &[PosTag], i: usize) -> bool {
    let mut seen = 0;
    for j in (0..i).rev() {
        if tags[j].is_adverb() {
            continue;
        }
        let lower = tokens[j].lower();
        if matches!(
            lower.as_str(),
            "be" | "am"
                | "is"
                | "are"
                | "was"
                | "were"
                | "been"
                | "being"
                | "have"
                | "has"
                | "had"
                | "having"
                | "'ve"
                | "get"
                | "gets"
                | "got"
                | "getting"
        ) {
            return true;
        }
        seen += 1;
        if seen >= 3 || !tags[j].is_verb() {
            return false;
        }
    }
    false
}

/// Tag for a punctuation token.
fn punct_tag(text: &str) -> PosTag {
    match text {
        "." | "!" | "?" => PosTag::Period,
        "," => PosTag::Comma,
        ":" | ";" | "-" | "–" | "—" => PosTag::Colon,
        _ => PosTag::Sym,
    }
}

/// Suffix-based tag guess for unknown lower-case words.
fn guess_by_suffix(lower: &str) -> PosTag {
    const NOUN_SUFFIXES: &[&str] = &[
        "tion", "sion", "ment", "ness", "ity", "ance", "ence", "ship", "ism", "ware", "hood",
        "age", "ery",
    ];
    const ADJ_SUFFIXES: &[&str] = &[
        "ous", "ful", "ive", "able", "ible", "ish", "less", "ant", "ic", "ary",
    ];
    if lower.ends_with("ly") {
        return PosTag::RB;
    }
    if lower.ends_with("ing") && lower.len() > 4 {
        return PosTag::VBG;
    }
    if lower.ends_with("ed") && lower.len() > 3 {
        return PosTag::VBN;
    }
    for s in NOUN_SUFFIXES {
        if lower.ends_with(s) {
            return PosTag::NN;
        }
    }
    for s in ADJ_SUFFIXES {
        if lower.ends_with(s) {
            return PosTag::JJ;
        }
    }
    if lower.ends_with("est") && lower.len() > 4 {
        return PosTag::JJS;
    }
    if lower.ends_with('s') && !lower.ends_with("ss") && lower.len() > 2 {
        return PosTag::NNS;
    }
    PosTag::NN
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sentence::split_sentences;
    use crate::tokenizer::tokenize;

    /// Tags a single-sentence text and returns (surface, tag) pairs.
    fn tag(text: &str) -> Vec<(String, PosTag)> {
        let tokens = tokenize(text);
        let sents = split_sentences(&tokens);
        assert_eq!(sents.len(), 1, "test text must be one sentence: {text}");
        let tagger = PosTagger::new();
        let tags = tagger.tag_sentence(sents[0].tokens(&tokens));
        tokens.into_iter().map(|t| t.text).zip(tags).collect()
    }

    fn tag_of(text: &str, word: &str) -> PosTag {
        tag(text)
            .into_iter()
            .find(|(w, _)| w == word)
            .unwrap_or_else(|| panic!("{word} not in {text}"))
            .1
    }

    #[test]
    fn paper_example_camera_takes_pictures() {
        let tagged = tag("This camera takes excellent pictures.");
        assert_eq!(tagged[0].1, PosTag::DT);
        assert_eq!(tagged[1].1, PosTag::NN);
        assert_eq!(tagged[2].1, PosTag::VBZ);
        assert_eq!(tagged[3].1, PosTag::JJ);
        assert_eq!(tagged[4].1, PosTag::NNS);
    }

    #[test]
    fn copula_plus_adjective() {
        assert_eq!(tag_of("The colors are vibrant.", "are"), PosTag::VBP);
        assert_eq!(tag_of("The colors are vibrant.", "vibrant"), PosTag::JJ);
    }

    #[test]
    fn passive_participle_after_be() {
        assert_eq!(
            tag_of("I am impressed by the picture quality.", "impressed"),
            PosTag::VBN
        );
    }

    #[test]
    fn simple_past_without_aux() {
        assert_eq!(tag_of("The lens impressed me.", "impressed"), PosTag::VBD);
    }

    #[test]
    fn base_verb_after_modal_and_to() {
        assert_eq!(tag_of("It can focus quickly.", "focus"), PosTag::VB);
        assert_eq!(tag_of("I want to review it.", "review"), PosTag::VB);
    }

    #[test]
    fn noun_after_determiner_even_if_verbish() {
        assert_eq!(tag_of("The review was fair.", "review"), PosTag::NN);
        assert_eq!(tag_of("Their support is great.", "support"), PosTag::NN);
    }

    #[test]
    fn present_plural_verb_after_pronoun() {
        assert_eq!(tag_of("They work well.", "work"), PosTag::VBP);
    }

    #[test]
    fn negated_verb_keeps_base_form() {
        let tagged = tag("The camera does not require an adapter.");
        assert_eq!(
            tag_of("The camera does not require an adapter.", "not"),
            PosTag::RB
        );
        let require = tagged.iter().find(|(w, _)| w == "require").unwrap();
        assert_eq!(require.1, PosTag::VB);
    }

    #[test]
    fn unknown_capitalized_word_is_proper_noun() {
        assert_eq!(
            tag_of("The Zorblax camera is fine.", "Zorblax"),
            PosTag::NNP
        );
    }

    #[test]
    fn unknown_suffix_guesses() {
        assert_eq!(guess_by_suffix("frobulation"), PosTag::NN);
        assert_eq!(guess_by_suffix("zorptastic"), PosTag::JJ);
        assert_eq!(guess_by_suffix("blorficly"), PosTag::RB);
        assert_eq!(guess_by_suffix("zorping"), PosTag::VBG);
        assert_eq!(guess_by_suffix("zorped"), PosTag::VBN);
        assert_eq!(guess_by_suffix("widgets"), PosTag::NNS);
        assert_eq!(guess_by_suffix("blorf"), PosTag::NN);
    }

    #[test]
    fn that_as_complementizer_after_verb() {
        assert_eq!(
            tag_of("I think that the camera is great.", "that"),
            PosTag::IN
        );
        assert_eq!(tag_of("That camera is great.", "That"), PosTag::DT);
    }

    #[test]
    fn numbers_are_cd() {
        assert_eq!(tag_of("It has 72 modes.", "72"), PosTag::CD);
    }

    #[test]
    fn possessive_clitic() {
        assert_eq!(tag_of("The camera's lens is sharp.", "'s"), PosTag::POS);
        assert_eq!(tag_of("It's a great camera.", "'s"), PosTag::VBZ);
    }

    #[test]
    fn offers_is_vbz_in_context() {
        assert_eq!(
            tag_of("The company offers mediocre services.", "offers"),
            PosTag::VBZ
        );
    }

    #[test]
    fn denominal_verb_after_singular_noun() {
        // "lacks" is a VBZ in the dictionary via the verb list
        assert_eq!(
            tag_of("The camera lacks a viewfinder.", "lacks"),
            PosTag::VBZ
        );
    }
}

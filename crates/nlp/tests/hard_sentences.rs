//! Robustness tests on hard constructions: the pipeline must produce a
//! sane analysis (no panics, plausible structure) on sentence shapes the
//! unit tests don't cover.

use wf_nlp::{ChunkKind, Pipeline, PosTag};

fn pipeline() -> Pipeline {
    Pipeline::new()
}

#[test]
fn questions_parse() {
    let a = pipeline().analyze_sentence("Is the battery life really that bad?");
    assert!(!a.chunks.is_empty());
    // the copula is recognized as a verb group
    assert!(a.chunks.iter().any(|c| c.kind == ChunkKind::VP));
}

#[test]
fn imperative_has_no_subject() {
    let a = pipeline().analyze_sentence("Return the camera immediately.");
    let clause = &a.analysis.clauses[0];
    assert_eq!(clause.predicate.as_ref().unwrap().lemma, "return");
    assert!(clause.subject.is_none());
    assert!(clause.object.is_some());
}

#[test]
fn coordination_of_three_clauses() {
    let a = pipeline().analyze_sentence(
        "The lens is sharp, the menu is confusing, and the battery drains quickly.",
    );
    let predicates: Vec<String> = a
        .analysis
        .clauses
        .iter()
        .filter_map(|c| c.predicate.as_ref().map(|p| p.lemma.clone()))
        .collect();
    assert!(predicates.contains(&"drain".to_string()), "{predicates:?}");
    assert!(
        predicates.iter().filter(|p| *p == "be").count() >= 2,
        "{predicates:?}"
    );
}

#[test]
fn quoted_speech() {
    let a = pipeline().analyze("He said \"the camera is excellent\" and left.");
    assert!(!a.is_empty());
    let clause_predicates: Vec<String> = a[0]
        .analysis
        .clauses
        .iter()
        .filter_map(|c| c.predicate.as_ref().map(|p| p.lemma.clone()))
        .collect();
    assert!(
        clause_predicates.contains(&"say".to_string()),
        "{clause_predicates:?}"
    );
}

#[test]
fn parenthetical_material() {
    let a = pipeline()
        .analyze_sentence("The camera (a gift from my brother) takes excellent pictures.");
    let clause = a
        .analysis
        .clauses
        .iter()
        .find(|c| c.predicate.as_ref().is_some_and(|p| p.lemma == "take"));
    assert!(clause.is_some(), "{:?}", a.analysis.clauses);
}

#[test]
fn very_long_sentence_does_not_degrade() {
    let long = format!(
        "The camera, {} takes excellent pictures.",
        "which I bought in March after reading many reviews and comparing prices, ".repeat(10)
    );
    let a = pipeline().analyze_sentence(&long);
    assert!(a.tokens.len() > 100);
    assert!(!a.analysis.clauses.is_empty());
}

#[test]
fn numbers_dates_and_units() {
    let a = pipeline().analyze_sentence("It weighs 1.5 pounds and costs 299 dollars as of 2004.");
    let cd_count = a.tags.iter().filter(|&&t| t == PosTag::CD).count();
    assert!(cd_count >= 3, "{:?}", a.tags);
}

#[test]
fn all_caps_heading() {
    let a = pipeline().analyze_sentence("GREAT CAMERA FOR BEGINNERS");
    assert!(!a.tokens.is_empty());
}

#[test]
fn empty_and_punctuation_only() {
    assert!(pipeline().analyze_sentence("").tokens.is_empty());
    let a = pipeline().analyze_sentence("!!! ... ???");
    assert!(a.analysis.clauses.iter().all(|c| c.predicate.is_none()));
}

#[test]
fn unicode_quotes_and_dashes() {
    let a = pipeline().analyze_sentence("The camera — “superb” by any measure — impressed me.");
    assert!(a
        .analysis
        .clauses
        .iter()
        .any(|c| c.predicate.as_ref().is_some_and(|p| p.lemma == "impress")));
}

#[test]
fn nested_possessives() {
    let a = pipeline().analyze_sentence("My brother's camera's battery died.");
    let clause = &a.analysis.clauses[0];
    assert_eq!(clause.predicate.as_ref().unwrap().lemma, "die");
}

#[test]
fn sentence_initial_adverbials() {
    let a = pipeline().analyze_sentence("Unfortunately, the battery drains quickly.");
    let clause = a
        .analysis
        .clauses
        .iter()
        .find(|c| c.predicate.as_ref().is_some_and(|p| p.lemma == "drain"))
        .expect("drain clause");
    assert!(clause.subject.is_some());
}

#[test]
fn tagger_accuracy_on_gold_sample() {
    // a small hand-tagged gold sample in the evaluation domains; the
    // substitute tagger must stay above 90% token accuracy here
    let gold: &[(&str, &[&str])] = &[
        (
            "The camera takes excellent pictures.",
            &["DT", "NN", "VBZ", "JJ", "NNS", "."],
        ),
        (
            "I am impressed by the picture quality.",
            &["PRP", "VBP", "VBN", "IN", "DT", "NN", "NN", "."],
        ),
        ("The colors are vibrant.", &["DT", "NNS", "VBP", "JJ", "."]),
        (
            "Regulators criticize the company.",
            &["NNS", "VBP", "DT", "NN", "."],
        ),
        (
            "The battery drains quickly.",
            &["DT", "NN", "VBZ", "RB", "."],
        ),
        (
            "It can focus quickly in low light.",
            &["PRP", "MD", "VB", "RB", "IN", "JJ", "NN", "."],
        ),
        (
            "The company offers mediocre services.",
            &["DT", "NN", "VBZ", "JJ", "NNS", "."],
        ),
    ];
    let p = Pipeline::new();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (text, tags) in gold {
        let a = p.analyze_sentence(text);
        assert_eq!(a.tags.len(), tags.len(), "{text}");
        for (got, want) in a.tags.iter().zip(*tags) {
            total += 1;
            if got.as_str() == *want {
                correct += 1;
            }
        }
    }
    let accuracy = correct as f64 / total as f64;
    assert!(
        accuracy >= 0.9,
        "tagger accuracy {accuracy} ({correct}/{total})"
    );
}

#[test]
fn lemmatizer_consistent_with_dictionary() {
    // every inflected verb form in the embedded tag dictionary must
    // lemmatize to a base form the dictionary also lists as VB
    use wf_nlp::dict::TagDictionary;
    use wf_nlp::lemma::lemmatize_verb;
    use wf_nlp::PosTag;
    let raw = include_str!("../data/tag_lexicon.tsv");
    let dict = TagDictionary::global();
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for line in raw.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (word, tags) = line.split_once('\t').expect("tsv");
        // only unambiguous inflected verb forms: plain nouns that happen to
        // end in -s would fail this check for good reason
        let tag_list: Vec<&str> = tags.split(',').collect();
        let is_inflected_verb = tag_list
            .iter()
            .all(|t| matches!(*t, "VBZ" | "VBD" | "VBN" | "VBG"));
        if !is_inflected_verb {
            continue;
        }
        checked += 1;
        let lemma = lemmatize_verb(word);
        if !dict
            .lookup(&lemma)
            .is_some_and(|ts| ts.contains(&PosTag::VB))
        {
            failures.push(format!("{word} -> {lemma}"));
        }
    }
    assert!(checked > 300, "too few forms checked: {checked}");
    assert!(
        failures.is_empty(),
        "{} lemmatization failures: {:?}",
        failures.len(),
        &failures[..failures.len().min(10)]
    );
}

//! `wfsm` subcommand implementations.
//!
//! Each command reads plain text (stdin or `--file`; `mine`/`features`
//! read one document per line) and writes a human-readable report to the
//! returned string, so commands are directly testable.

use crate::args::ParsedArgs;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;
use wf_features::{FeatureExtractor, Selection, CHI2_95};
use wf_platform::{
    default_slos, load_store, parse_query, render_scoreboard, save_store, Cluster, DataStore,
    DoctorReport, DurableStorage, FaultPlan, HealthEngine, Indexer, Ingestor, Level, LogFilter,
    MinerPipeline, NodeHealth, PipelineStats, Profile, RawDocument, RunDiff, SourceKind, Telemetry,
    TelemetrySnapshot, TimeSeriesStore, DEFAULT_SCRAPE_INTERVAL_MS, DEFAULT_TIMELINE_CAPACITY,
};
use wf_sentiment::{
    mention_polarities, AdhocSentimentMiner, SentimentEntityMiner, SentimentMiner,
    SentimentQueryService, SubjectList,
};
use wf_types::{NodeId, Polarity, RetryPolicy};

/// Dispatches a parsed command line. Returns the report to print.
pub fn run(args: &ParsedArgs) -> Result<String, String> {
    match args.command.as_str() {
        "analyze" => analyze(args),
        "entities" => entities(args),
        "features" => features(args),
        "mine" => mine(args),
        "metrics" => metrics(args),
        "query" => query(args),
        "gen-corpus" => gen_corpus(args),
        "search" => search(args),
        "trace" => trace(args),
        "doctor" => doctor(args),
        "top" => top(args),
        "serve" => serve(args),
        "recover" => recover(args),
        "timeline" => timeline(args),
        "profile" => profile(args),
        "logs" => logs(args),
        "diff" => diff(args),
        "help" | "" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// Top-level usage text.
pub fn usage() -> String {
    "wfsm — WebFountain sentiment mining (Yi & Niblack, ICDE 2005 reproduction)

USAGE:
  wfsm analyze  --subjects A,B[,C...] [--file PATH]
      Target-level sentiment for each subject mention (text from stdin
      or --file).
  wfsm entities [--file PATH]
      Named entities plus their mention sentiment (no subject list).
  wfsm features <D_PLUS.txt> <D_MINUS.txt> [--top N]
      Feature terms by bBNP + likelihood ratio; inputs are one document
      per line.
  wfsm mine     --input DOCS.txt --snapshot OUT.jsonl [--subjects A,B]
                [--chaos-seed S] [--fail-rate P] [--metrics M.json]
                [--data-dir DIR] [--explain]
      Run the mining pipeline over one-document-per-line input and save
      an annotated store snapshot (named-entity mode when no subjects).
      With --chaos-seed, inject deterministic faults at probability P
      (default 0.05) and report retries / skipped shards. With --metrics,
      also write the run's telemetry snapshot as canonical JSON (same
      seed ⇒ byte-identical file). With --explain, index the mined store
      and print a per-plan-node query profile (postings scanned, sim-ms)
      for representative boolean / phrase / range / regex queries. With
      --data-dir, mutations are write-ahead logged under DIR
      (shard-NNN/{wal.log,snapshot.jsonl}): the raw corpus is
      snapshotted after ingest and every mining annotation lands in the
      WAL, ready for `wfsm recover`.
  wfsm metrics  --file M.json [--format table|json]
  wfsm metrics  --input DOCS.txt [--subjects A,B] [--chaos-seed S]
                [--fail-rate P] [--format table|json]
      Render a telemetry snapshot — either one exported by `mine
      --metrics`, or from a fresh in-memory mining run — as a
      human-readable table (default) or canonical JSON (--format json;
      --json is accepted as an alias).
  wfsm query    --snapshot OUT.jsonl --subject NAME [--polarity +|-]
      Query a mined snapshot for a subject's sentiment-bearing sentences.
  wfsm search   --snapshot OUT.jsonl --query 'camera AND (battery OR \"picture quality\")'
                [--explain]
      Boolean/phrase/meta/concept/regex/range search over a snapshot's
      index. With --explain, also print the executed query plan with
      per-node postings scanned, pruning and simulated cost.
  wfsm trace    --input DOCS.txt [--subjects A,B] [--chaos-seed S]
                [--fail-rate P] [--last N] [--format text|json|chrome]
      Run the mining pipeline in memory and export the flight recorder's
      last N traces (default 10): an ASCII waterfall (text), a canonical
      JSON tree (json), or a Chrome trace_event file for chrome://tracing
      (chrome). Same seed ⇒ byte-identical output.
  wfsm doctor   [--chaos-seed S] [--fail-rate P] [--docs N] [--rounds N]
                [--format text|json]
      Run a deterministic health workload on a simulated 4-node cluster
      (ingest → bus probes → mining → index rebuild, per round) and print
      the doctor report: SLO burn rates, the burn-rate alert log, each
      histogram's worst exemplar (live == dumpable with `wfsm trace`),
      and the per-node scoreboard. With --chaos-seed, faults are injected
      and two nodes are degraded/downed so SLOs breach. Same seed ⇒
      byte-identical output.
  wfsm top      [--chaos-seed S] [--fail-rate P] [--docs N] [--watch N]
      Per-node scoreboard for the same workload: one-shot by default,
      or N deterministic refresh frames (one workload round each) with
      --watch N.
  wfsm serve    [--docs N] [--subject NAME | --top K [--polarity +|-|0]]
                [--clients C] [--qps Q] [--requests R] [--cache N]
                [--queue N] [--seed S] [--chaos-seed S] [--fail-rate P]
                [--data-dir DIR] [--format text|json]
      Mine a synthetic multi-brand corpus on a simulated 4-node cluster,
      build the sharded sentiment index, and serve query-time sentiment
      from it. One-shot with --subject (\"sentiment of X\") or --top K
      (\"top k by polarity\"); otherwise drive a deterministic many-client
      request loop (seeded arrivals at --qps on the simulated clock)
      through the LRU result cache and bounded admission queue, and
      report throughput, shed/error counts, latency percentiles and the
      serving SLOs. With --chaos-seed, faults hit the serving path and
      one index shard is lost mid-stream. With --data-dir, the cluster
      runs durably (WAL + post-ingest checkpoint under DIR) and the
      mid-stream node loss becomes a crash: node 2's state is dropped
      and later restarted via snapshot+WAL replay. Same seed ⇒
      byte-identical --format json output.
  wfsm timeline [--workload serve|mine] [--interval MS] [--docs N]
                [--chaos-seed S] [--fail-rate P] [--format table|json]
      Run a deterministic workload — the serving request loop (default)
      or a batched mining run — scraping the telemetry registry into a
      fixed-capacity time-series ring on the simulated clock, and render
      the windowed rollups: counter rate/increase, gauge last/min/max,
      histogram-delta p50/p95/p99 per scrape window. Serving flags
      (--clients --qps --requests --cache --queue --seed) apply to the
      serve workload. Same seed ⇒ byte-identical --format json output.
  wfsm profile  [--workload serve|mine] [--last N]
                [--format text|collapsed|json] [--docs N]
                [--chaos-seed S] [--fail-rate P]
      Run the same workload and fold the flight recorder's spans (last N
      traces, default all) into a deterministic self/total-time profile
      tree with per-stage attribution: cache-lookup / shard-fanout /
      postings-merge on the serving path, nlp.tokenize … nlp.ner in the
      mining path. Formats: annotated tree with top hotspots (text),
      flamegraph collapsed stacks (collapsed), canonical JSON (json).
  wfsm logs     [--workload serve|mine] [--level error|warn|info|debug]
                [--target PREFIX] [--trace ID] [--since MS] [--until MS]
                [--format text|json] [KEY=VALUE ...] [--docs N]
                [--chaos-seed S] [--fail-rate P]
      Run the same deterministic workload and query its structured event
      log: leveled records on the simulated clock with stable targets
      (bus.svc:*, miner.shard:*, store.shard:*, durable.shard:*,
      serving.loop), key=value fields and trace correlation IDs that
      resolve in `wfsm trace`. Filters AND together: --level is a
      maximum severity, --target a prefix match, positional KEY=VALUE
      terms match record fields exactly. The header reports the
      conservation law (emitted = kept + sampled + dropped). Same seed
      ⇒ byte-identical output (text and json).
  wfsm diff     RUN_A.json RUN_B.json [--format text|json]
      Compare two exported run artifacts — telemetry snapshots from
      `mine --metrics`/`wfsm metrics --format json`, or profile trees
      from `wfsm profile --format json`. Reports per-counter/per-gauge
      deltas or per-stage self-time deltas with regression attribution
      (stage slower in run B), and a machine-readable verdict
      (ok | changed | regressed) that tools/bench_gate.py can consume.
      Same-seed runs diff to \"ok\"; a perturbed run yields deterministic
      non-empty attribution.
  wfsm recover  --data-dir DIR [--format text|json]
      Read-only recovery report over a durable data dir written by `mine
      --data-dir` / `serve --data-dir`: per shard, what the snapshot
      holds, how many WAL records replay, the last valid LSN and why
      replay stopped (end_of_log | torn_tail | bad_crc | bad_payload).
      Never repairs anything, so running it twice over the same dir is
      byte-identical (--format json is canonical).
  wfsm gen-corpus --domain camera|music|petroleum|pharma --out DOCS.txt
                [--docs N] [--seed S]
      Write a synthetic gold-labeled evaluation corpus, one document per
      line (feed it back into `wfsm mine`).
  wfsm help
      This message.
"
    .to_string()
}

/// Parses `--format`, shared by every exporting command: returns the
/// default when the option is absent, and rejects anything outside
/// `allowed` with the canonical `unknown --format` error.
fn parse_format<'a>(
    args: &'a ParsedArgs,
    default: &'a str,
    allowed: &[&str],
) -> Result<&'a str, String> {
    let format = args.opt("format").unwrap_or(default);
    if allowed.contains(&format) {
        Ok(format)
    } else {
        Err(format!(
            "unknown --format {format:?} ({})",
            allowed.join("|")
        ))
    }
}

fn read_text(args: &ParsedArgs) -> Result<String, String> {
    match args.opt("file") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buffer)
        }
    }
}

fn read_doc_lines(path: &str) -> Result<Vec<String>, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect())
}

fn subject_list(names: &[String]) -> SubjectList {
    let mut builder = SubjectList::builder();
    for name in names {
        builder = builder.subject(name, [name.clone()]);
    }
    builder.build()
}

fn analyze(args: &ParsedArgs) -> Result<String, String> {
    let names = args.opt_list("subjects");
    if names.is_empty() {
        return Err("analyze needs --subjects A,B,...".into());
    }
    let text = read_text(args)?;
    let miner = SentimentMiner::with_default_resources();
    let records = miner.analyze_text(&text, &subject_list(&names));
    let mut out = String::new();
    for (subject, sentence_span, polarity) in mention_polarities(&records) {
        let sentence = sentence_span.slice(&text).trim().replace('\n', " ");
        out.push_str(&format!("[{polarity}] {subject}: {sentence}\n"));
    }
    if out.is_empty() {
        out.push_str("(no subject mentions found)\n");
    }
    Ok(out)
}

fn entities(args: &ParsedArgs) -> Result<String, String> {
    let text = read_text(args)?;
    let miner = SentimentMiner::with_default_resources();
    let records = miner.analyze_named_entities(&text);
    let mut out = String::new();
    for (subject, _, polarity) in mention_polarities(&records) {
        out.push_str(&format!("[{polarity}] {subject}\n"));
    }
    if out.is_empty() {
        out.push_str("(no named entities found)\n");
    }
    Ok(out)
}

fn features(args: &ParsedArgs) -> Result<String, String> {
    let [d_plus_path, d_minus_path] = args.positional.as_slice() else {
        return Err("features needs two positional arguments: <D_PLUS.txt> <D_MINUS.txt>".into());
    };
    let d_plus = read_doc_lines(d_plus_path)?;
    let d_minus = read_doc_lines(d_minus_path)?;
    let top: usize = args
        .opt("top")
        .map(|v| v.parse().map_err(|e| format!("bad --top: {e}")))
        .transpose()?
        .unwrap_or(20);
    let fx = FeatureExtractor::new();
    let selected = fx.select(&d_plus, &d_minus, Selection::Confidence(CHI2_95));
    let mut out = format!("{:<24} {:>10}\n", "feature term", "-2logλ");
    for f in selected.iter().take(top) {
        out.push_str(&format!("{:<24} {:>10.1}\n", f.term, f.score));
    }
    Ok(out)
}

/// The mining-run core shared by `mine` and `metrics --input`: parses the
/// chaos flags, loads the documents, runs the pipeline, and returns the
/// mined store (whose telemetry registry holds the run's instruments).
fn run_mine_pipeline(
    args: &ParsedArgs,
) -> Result<(DataStore, PipelineStats, Option<u64>, f64), String> {
    let input = args.require("input")?;
    // --chaos-seed N [--fail-rate P]: run under deterministic fault
    // injection to exercise the degraded path end to end
    let chaos_seed: Option<u64> = args
        .opt("chaos-seed")
        .map(|v| v.parse().map_err(|e| format!("bad --chaos-seed: {e}")))
        .transpose()?;
    let fail_rate: f64 = args
        .opt("fail-rate")
        .map(|v| v.parse().map_err(|e| format!("bad --fail-rate: {e}")))
        .transpose()?
        .unwrap_or(0.05);
    if args.opt("fail-rate").is_some() && chaos_seed.is_none() {
        return Err("--fail-rate requires --chaos-seed".into());
    }
    if !(0.0..=1.0).contains(&fail_rate) {
        return Err(format!("--fail-rate must be in [0, 1], got {fail_rate}"));
    }
    let docs = read_doc_lines(input)?;
    let store = DataStore::new(4).map_err(|e| e.to_string())?;
    if let Some(dir) = args.opt("data-dir") {
        let storage = DurableStorage::at_dir(Path::new(dir), 4).map_err(|e| e.to_string())?;
        store
            .attach_durability(Arc::new(storage))
            .map_err(|e| e.to_string())?;
    }
    // the whole run is one causal trace: mine → ingest.batch → pipeline.run
    let mut root = store.telemetry().trace_root("mine");
    let raw: Vec<RawDocument> = docs
        .iter()
        .enumerate()
        .map(|(i, text)| {
            RawDocument::new(
                format!("file://{input}#{i}"),
                wf_platform::SourceKind::Web,
                text.clone(),
            )
            // zero-padded line number: lets meta:line=[..] range queries
            // select document windows lexicographically
            .with_metadata("line", format!("{i:04}"))
        })
        .collect();
    Ingestor::new(&store).ingest_batch_traced(raw, &mut root);
    // checkpoint the raw corpus now: mining annotations then append to
    // the WAL, so `wfsm recover` genuinely replays them over the snapshot
    if let Some(storage) = store.durability() {
        storage.checkpoint(&store).map_err(|e| e.to_string())?;
    }
    let names = args.opt_list("subjects");
    let pipeline = if names.is_empty() {
        MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()))
    } else {
        MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subject_list(&names))))
    };
    let stats = match chaos_seed {
        Some(seed) => {
            let plan = wf_platform::FaultPlan::uniform(seed, fail_rate);
            let ctx = wf_platform::FaultContext {
                plan: Some(&plan),
                retry: wf_types::RetryPolicy::default(),
                health: &[],
            };
            pipeline.run_traced(&store, &ctx, &mut root)
        }
        None => pipeline.run_traced(&store, &wf_platform::FaultContext::none(), &mut root),
    };
    root.attr("documents", docs.len().to_string());
    root.finish();
    Ok((store, stats, chaos_seed, fail_rate))
}

fn mine(args: &ParsedArgs) -> Result<String, String> {
    let snapshot = args.require("snapshot")?.to_string();
    let (store, stats, chaos_seed, fail_rate) = run_mine_pipeline(args)?;
    let written = save_store(&store, Path::new(&snapshot)).map_err(|e| e.to_string())?;
    let mut out = format!(
        "mined {} documents ({} failed); snapshot of {} entities written to {}\n",
        stats.processed, stats.failed, written, snapshot
    );
    if let Some(seed) = chaos_seed {
        out.push_str(&format!(
            "chaos: seed {seed}, fail rate {fail_rate}; {} retries, {} skipped shard(s), {} sim ms\n",
            stats.retries,
            stats.skipped_shards,
            stats.shard_sim_ms.iter().sum::<u64>()
        ));
    }
    if let Some(storage) = store.durability() {
        let (wal, snap): (u64, u64) = (0..4)
            .map(|s| (storage.wal_bytes(s), storage.snapshot_bytes(s)))
            .fold((0, 0), |(w, p), (a, b)| (w + a, p + b));
        out.push_str(&format!(
            "durable: {} snapshot bytes + {} WAL bytes across 4 shards under {} (inspect with `wfsm recover`)\n",
            snap,
            wal,
            args.opt("data-dir").unwrap_or_default()
        ));
    }
    if let Some(metrics_path) = args.opt("metrics") {
        let json = store.telemetry().snapshot().to_json_string();
        std::fs::write(metrics_path, json + "\n")
            .map_err(|e| format!("cannot write {metrics_path}: {e}"))?;
        out.push_str(&format!("metrics snapshot written to {metrics_path}\n"));
    }
    if args.flag("explain") {
        out.push_str(&explain_report(&store)?);
    }
    Ok(out)
}

/// Representative queries profiled by `mine --explain`: one per plan-node
/// family (boolean combinators, phrase, metadata range, regex).
const EXPLAIN_QUERIES: [&str; 4] = [
    "excellent AND NOT terrible",
    "\"excellent pictures\"",
    "meta:line=[0000..0002]",
    "regex:excel.*",
];

fn explain_report(store: &DataStore) -> Result<String, String> {
    let indexer = Indexer::new();
    store.for_each(|e| indexer.index_entity(e));
    let mut out = String::from("\nQUERY PROFILES (EXPLAIN)\n");
    for text in EXPLAIN_QUERIES {
        let query = parse_query(text).map_err(|e| e.to_string())?;
        let (docs, profile) = indexer.query_explained(&query).map_err(|e| e.to_string())?;
        out.push_str(&format!("\nquery: {text}\n"));
        out.push_str(&profile.render_text());
        out.push_str(&format!(
            "=> {} document(s), {} sim-ms total\n",
            docs.len(),
            profile.total_sim_ms()
        ));
    }
    Ok(out)
}

/// Renders a telemetry snapshot: from a `mine --metrics` export
/// (`--file`), or by running the mining pipeline in memory (`--input`).
fn metrics(args: &ParsedArgs) -> Result<String, String> {
    let snapshot = if let Some(path) = args.opt("file") {
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        TelemetrySnapshot::from_json_str(&content)
            .map_err(|e| format!("bad metrics snapshot {path}: {e}"))?
    } else if args.opt("input").is_some() {
        let (store, _, _, _) = run_mine_pipeline(args)?;
        store.telemetry().snapshot()
    } else {
        return Err("metrics needs --file SNAPSHOT.json or --input DOCS.txt".into());
    };
    let default = if args.flag("json") { "json" } else { "table" };
    match parse_format(args, default, &["table", "json"])? {
        "json" => Ok(snapshot.to_json_string() + "\n"),
        _ => Ok(snapshot.to_table()),
    }
}

fn query(args: &ParsedArgs) -> Result<String, String> {
    let snapshot = args.require("snapshot")?;
    let subject = args.require("subject")?;
    let polarity = match args.opt("polarity") {
        None => None,
        Some(p) => {
            Some(Polarity::parse(p).ok_or_else(|| format!("bad --polarity {p:?} (use + or -)"))?)
        }
    };
    let store = load_store(Path::new(snapshot), 4).map_err(|e| e.to_string())?;
    let indexer = Indexer::new();
    store.for_each(|e| indexer.index_entity(e));
    let hits = SentimentQueryService::query(&indexer, &store, subject, polarity)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    for hit in &hits {
        out.push_str(&format!(
            "[{}] ({}) {}\n",
            hit.polarity, hit.doc, hit.sentence
        ));
    }
    out.push_str(&format!("{} hit(s)\n", hits.len()));
    Ok(out)
}

fn search(args: &ParsedArgs) -> Result<String, String> {
    let snapshot = args.require("snapshot")?;
    let query_text = args.require("query")?;
    let query = parse_query(query_text).map_err(|e| e.to_string())?;
    let store = load_store(Path::new(snapshot), 4).map_err(|e| e.to_string())?;
    let indexer = Indexer::new();
    store.for_each(|e| indexer.index_entity(e));
    let (docs, profile) = indexer.query_explained(&query).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for doc in &docs {
        let entity = store.get(*doc).map_err(|e| e.to_string())?;
        let preview: String = entity.text.chars().take(80).collect();
        out.push_str(&format!("{doc}  {}  {preview}\n", entity.uri));
    }
    out.push_str(&format!("{} document(s)\n", docs.len()));
    if args.flag("explain") {
        out.push_str("\nplan:\n");
        out.push_str(&profile.render_text());
        out.push_str(&format!("total: {} sim-ms\n", profile.total_sim_ms()));
    }
    Ok(out)
}

/// Runs the mining pipeline in memory and exports the flight recorder.
fn trace(args: &ParsedArgs) -> Result<String, String> {
    let (store, _, _, _) = run_mine_pipeline(args)?;
    let last: usize = args
        .opt("last")
        .map(|v| v.parse().map_err(|e| format!("bad --last: {e}")))
        .transpose()?
        .unwrap_or(10);
    let recorder = store.telemetry().recorder();
    match parse_format(args, "text", &["text", "json", "chrome"])? {
        "json" => Ok(recorder.export_json_string(last) + "\n"),
        "chrome" => Ok(recorder.export_chrome_string(last) + "\n"),
        _ => Ok(recorder.export_text(last)),
    }
}

/// Number of `sentiment.score` bus probes per workload round: enough
/// that a chaos fail-rate reliably lands slow responses in the p99 tail.
const BUS_PROBES_PER_ROUND: usize = 25;

/// The deterministic health workload behind `wfsm doctor` / `wfsm top`:
/// a 4-node [`Cluster`] driven through rounds of ingest → bus probes →
/// sentiment mining → index rebuild, with a [`HealthEngine`] observing
/// the shared telemetry registry on the cluster's simulated clock after
/// every phase. Under `--chaos-seed` the same fault plan is installed on
/// the pipeline and the bus, node 1 is degraded and node 2 downed, so
/// retries, failovers and SLO breaches all show up in the report.
struct HealthWorkload {
    cluster: Cluster,
    engine: HealthEngine,
    docs: Vec<String>,
    round: usize,
}

/// A small positive/negative corpus cycled by the workload; the phrasing
/// feeds both the sentiment miners and the `sentiment.score` service.
fn synthetic_health_docs(n: usize) -> Vec<String> {
    const MOODS: [&str; 4] = [
        "takes excellent pictures",
        "has a terrible battery",
        "produces sharp images",
        "suffers from blurry output",
    ];
    (0..n)
        .map(|i| format!("The Canon camera {} in trial {i}.", MOODS[i % MOODS.len()]))
        .collect()
}

impl HealthWorkload {
    fn from_args(args: &ParsedArgs) -> Result<Self, String> {
        let chaos_seed: Option<u64> = args
            .opt("chaos-seed")
            .map(|v| v.parse().map_err(|e| format!("bad --chaos-seed: {e}")))
            .transpose()?;
        let fail_rate: f64 = args
            .opt("fail-rate")
            .map(|v| v.parse().map_err(|e| format!("bad --fail-rate: {e}")))
            .transpose()?
            .unwrap_or(0.15);
        if args.opt("fail-rate").is_some() && chaos_seed.is_none() {
            return Err("--fail-rate requires --chaos-seed".into());
        }
        if !(0.0..=1.0).contains(&fail_rate) {
            return Err(format!("--fail-rate must be in [0, 1], got {fail_rate}"));
        }
        let docs: usize = args
            .opt("docs")
            .map(|v| v.parse().map_err(|e| format!("bad --docs: {e}")))
            .transpose()?
            .unwrap_or(40);
        let cluster = Cluster::new(4).map_err(|e| e.to_string())?;
        cluster.bus().register(
            "sentiment.score",
            Arc::new(|req: &serde_json::Value| {
                let text = req.as_str().unwrap_or("");
                let plus = text.matches("excellent").count() + text.matches("sharp").count();
                let minus = text.matches("terrible").count() + text.matches("blurry").count();
                Ok(serde_json::Value::from(plus as i64 - minus as i64))
            }),
        );
        if let Some(seed) = chaos_seed {
            let plan = FaultPlan::uniform(seed, fail_rate);
            let retry = RetryPolicy {
                max_retries: 4,
                base_backoff_ms: 5,
                max_backoff_ms: 80,
                timeout_budget_ms: 50_000,
            };
            cluster.set_fault_plan(Some(plan.clone()));
            cluster.set_retry_policy(retry);
            cluster.bus().set_fault_plan(Some(plan));
            cluster.bus().set_retry_policy(retry);
            cluster.set_health(NodeId(1), NodeHealth::Degraded);
            cluster.set_health(NodeId(2), NodeHealth::Down);
        }
        let engine = HealthEngine::with_telemetry(default_slos(), Arc::clone(cluster.telemetry()));
        Ok(HealthWorkload {
            cluster,
            engine,
            docs: synthetic_health_docs(docs),
            round: 0,
        })
    }

    /// Re-evaluates every SLO against a fresh snapshot at the cluster's
    /// simulated now.
    fn observe(&mut self) {
        let snapshot = self.cluster.metrics_snapshot();
        self.engine.observe(self.cluster.sim_now(), &snapshot);
    }

    /// One workload round: ingest the corpus, probe the bus, mine, and
    /// rebuild the index, observing the SLOs after each phase.
    fn run_round(&mut self) {
        self.round += 1;
        let telemetry = Arc::clone(self.cluster.telemetry());
        let mut root = telemetry.trace_root(format!("doctor.ingest#{}", self.round));
        let raw: Vec<RawDocument> = self
            .docs
            .iter()
            .enumerate()
            .map(|(i, text)| {
                RawDocument::new(
                    format!("doctor://round{}/doc{i}", self.round),
                    SourceKind::Web,
                    text.clone(),
                )
            })
            .collect();
        Ingestor::new(self.cluster.store()).ingest_batch_traced(raw, &mut root);
        self.cluster.advance_clock(root.elapsed_sim_ms());
        root.finish();
        self.observe();
        let mut root = telemetry.trace_root(format!("doctor.probe#{}", self.round));
        for i in 0..BUS_PROBES_PER_ROUND {
            let doc = &self.docs[i % self.docs.len()];
            let request = serde_json::Value::from(doc.as_str());
            let _ = self
                .cluster
                .bus()
                .call_traced("sentiment.score", &request, &mut root);
        }
        self.cluster.advance_clock(root.elapsed_sim_ms());
        root.finish();
        self.observe();
        let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
        self.cluster.run_pipeline(&pipeline);
        self.observe();
        self.cluster.rebuild_index();
        self.observe();
    }
}

/// Runs the health workload and prints the full doctor report.
fn doctor(args: &ParsedArgs) -> Result<String, String> {
    let rounds: usize = args
        .opt("rounds")
        .map(|v| v.parse().map_err(|e| format!("bad --rounds: {e}")))
        .transpose()?
        .unwrap_or(3);
    let mut workload = HealthWorkload::from_args(args)?;
    for _ in 0..rounds {
        workload.run_round();
    }
    let report = DoctorReport::build(
        &workload.cluster,
        &workload.engine,
        workload.cluster.sim_now(),
    );
    match parse_format(args, "text", &["text", "json"])? {
        "json" => Ok(report.to_json_string() + "\n"),
        _ => Ok(report.to_table()),
    }
}

/// Runs the health workload and prints per-node scoreboard frames.
fn top(args: &ParsedArgs) -> Result<String, String> {
    let frames: usize = args
        .opt("watch")
        .map(|v| v.parse().map_err(|e| format!("bad --watch: {e}")))
        .transpose()?
        .unwrap_or(1);
    if frames == 0 {
        return Err("--watch needs at least 1 frame".into());
    }
    let mut workload = HealthWorkload::from_args(args)?;
    let mut out = String::new();
    for frame in 1..=frames {
        workload.run_round();
        out.push_str(&format!(
            "FRAME {frame} @ {} sim-ms\n",
            workload.cluster.sim_now()
        ));
        out.push_str(&render_scoreboard(&workload.cluster.scoreboard()));
        let firing: Vec<&str> = workload
            .engine
            .status()
            .iter()
            .filter(|s| s.firing)
            .map(|s| s.name.as_str())
            .collect();
        out.push_str(&format!(
            "slos firing: {}\n",
            if firing.is_empty() {
                "-".to_string()
            } else {
                firing.join(",")
            }
        ));
        if frame < frames {
            out.push('\n');
        }
    }
    Ok(out)
}

/// The serving corpus: five brands cycling four moods, so the sentiment
/// index holds several subjects with distinct polarity profiles.
fn synthetic_serving_docs(n: usize) -> Vec<String> {
    const BRANDS: [&str; 5] = ["Canon", "Nikon", "Sony", "Kodak", "Pentax"];
    const MOODS: [&str; 4] = [
        "takes excellent pictures",
        "has a terrible battery",
        "produces sharp images",
        "suffers from blurry output",
    ];
    (0..n)
        .map(|i| {
            format!(
                "{} {} in trial {i}.",
                BRANDS[i % BRANDS.len()],
                MOODS[i % MOODS.len()]
            )
        })
        .collect()
}

/// The request mix for the serve loop: popularity-skewed subject queries
/// (repeats give the cache something to hit), top-k analytics, and one
/// unknown subject keeping the error path honest.
fn serving_workload() -> Vec<String> {
    let mut pool = Vec::new();
    for _ in 0..4 {
        pool.push("sentiment of canon".to_string());
    }
    for _ in 0..2 {
        pool.push("sentiment of nikon".to_string());
    }
    pool.push("sentiment of sony".to_string());
    pool.push("sentiment of kodak".to_string());
    pool.push("sentiment of pentax".to_string());
    pool.push("top 3 +".to_string());
    pool.push("top 3 -".to_string());
    pool.push("sentiment of zorblax".to_string());
    pool
}

fn parse_positive<T: std::str::FromStr + PartialOrd + From<u8>>(
    args: &ParsedArgs,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let value = match args.opt(name) {
        None => default,
        Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}"))?,
    };
    if value < T::from(1u8) {
        return Err(format!("--{name} must be at least 1"));
    }
    Ok(value)
}

/// Query-time sentiment serving: mine → build the sharded index → answer
/// one-shot queries or drive the deterministic request loop.
fn serve(args: &ParsedArgs) -> Result<String, String> {
    use wf_platform::ServingBackend;
    use wf_sentiment::{SentimentServingBackend, ShardedSentimentIndex};

    let docs: usize = parse_positive(args, "docs", 40usize)?;
    let chaos_seed: Option<u64> = args
        .opt("chaos-seed")
        .map(|v| v.parse().map_err(|e| format!("bad --chaos-seed: {e}")))
        .transpose()?;
    let fail_rate: f64 = args
        .opt("fail-rate")
        .map(|v| v.parse().map_err(|e| format!("bad --fail-rate: {e}")))
        .transpose()?
        .unwrap_or(0.05);
    if args.opt("fail-rate").is_some() && chaos_seed.is_none() {
        return Err("--fail-rate requires --chaos-seed".into());
    }
    if !(0.0..=1.0).contains(&fail_rate) {
        return Err(format!("--fail-rate must be in [0, 1], got {fail_rate}"));
    }
    let format = parse_format(args, "text", &["text", "json"])?;

    // offline half: ingest + mine the corpus, then precompute the index
    let cluster = Cluster::new(4).map_err(|e| e.to_string())?;
    if let Some(dir) = args.opt("data-dir") {
        let storage = DurableStorage::at_dir(Path::new(dir), 4).map_err(|e| e.to_string())?;
        cluster
            .attach_durability(Arc::new(storage))
            .map_err(|e| e.to_string())?;
    }
    let raw: Vec<RawDocument> = synthetic_serving_docs(docs)
        .iter()
        .enumerate()
        .map(|(i, text)| RawDocument::new(format!("serve://doc{i}"), SourceKind::Web, text.clone()))
        .collect();
    Ingestor::new(cluster.store()).ingest_batch(raw);
    // checkpoint the raw corpus; mining updates then land in the WAL so a
    // mid-serve crash recovers the mined state via snapshot + replay
    if cluster.durability().is_some() {
        cluster.checkpoint().map_err(|e| e.to_string())?;
    }
    let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    cluster.run_pipeline(&pipeline);
    let index = ShardedSentimentIndex::build_from_store(cluster.store());
    let postings = index.posting_count();
    let subjects = index.subjects().len();
    let backend = SentimentServingBackend::new(index);

    // one-shot query paths
    if let Some(subject) = args.opt("subject") {
        let answer = backend
            .execute(&format!("sentiment of {subject}"))
            .map_err(|e| e.to_string())?;
        return Ok(match format {
            "json" => answer.body + "\n",
            _ => {
                let summary = backend
                    .index()
                    .summary(&subject.to_lowercase())
                    .expect("execute succeeded");
                format!(
                    "{}: {} positive, {} negative, {} neutral (net {:+}) over {} posting(s)\n",
                    summary.subject,
                    summary.positive,
                    summary.negative,
                    summary.neutral,
                    summary.net(),
                    summary.total()
                )
            }
        });
    }
    if let Some(k) = args.opt("top") {
        let polarity = args.opt("polarity").unwrap_or("+");
        let answer = backend
            .execute(&format!("top {k} {polarity}"))
            .map_err(|e| e.to_string())?;
        return Ok(match format {
            "json" => answer.body + "\n",
            _ => {
                let k: usize = k.parse().expect("execute validated k");
                let polarity = Polarity::parse(polarity).expect("execute validated polarity");
                let mut out = format!("top {k} by {polarity}:\n");
                for (rank, s) in backend.index().top_k(k, polarity).iter().enumerate() {
                    out.push_str(&format!(
                        "{:>3}. {:<12} {} mention(s) (net {:+})\n",
                        rank + 1,
                        s.subject,
                        s.count(polarity),
                        s.net()
                    ));
                }
                out
            }
        });
    }

    // request-loop mode
    let config = wf_platform::ServingConfig {
        seed: parse_positive(args, "seed", 20050405u64)?,
        clients: parse_positive(args, "clients", 8u32)?,
        qps: parse_positive(args, "qps", 200u64)?,
        requests: parse_positive(args, "requests", 400u64)?,
        cache_capacity: args
            .opt("cache")
            .map(|v| v.parse().map_err(|e| format!("bad --cache: {e}")))
            .transpose()?
            .unwrap_or(64),
        queue_capacity: parse_positive(args, "queue", 32usize)?,
        ..wf_platform::ServingConfig::default()
    };
    let requests = config.requests;
    let mut engine = HealthEngine::with_telemetry(default_slos(), Arc::clone(cluster.telemetry()));
    let mut serve_loop = wf_platform::ServeLoop::new(
        &backend,
        Arc::clone(cluster.telemetry()),
        config,
        serving_workload(),
    );
    if let Some(seed) = chaos_seed {
        // chaos on the serving path, plus the doctor fixture's topology
        // landing mid-stream: node 1 degrades, node 2's shard is lost.
        // Under --data-dir the loss is a real crash (store state dropped)
        // and a later trigger restarts the node via snapshot + WAL replay.
        serve_loop = serve_loop
            .with_fault_plan(FaultPlan::uniform(seed, fail_rate))
            .with_trigger(requests / 3, || {
                backend.set_shard_health(1, NodeHealth::Degraded)
            })
            .with_trigger(requests / 2, || {
                backend.set_shard_health(2, NodeHealth::Down);
                if cluster.durability().is_some() {
                    cluster.drop_node_state(NodeId(2));
                }
            });
        if cluster.durability().is_some() {
            serve_loop = serve_loop.with_trigger(requests * 2 / 3, || {
                cluster
                    .restart_node(NodeId(2))
                    .expect("durable restart of node 2");
                backend.set_shard_health(2, NodeHealth::Up);
            });
        }
    }
    let report = {
        let cluster = &cluster;
        let engine = &mut engine;
        serve_loop
            .run_observed(&mut |now_sim_ms| {
                cluster.advance_clock(now_sim_ms.saturating_sub(cluster.sim_now()));
                let snapshot = cluster.metrics_snapshot();
                engine.observe(cluster.sim_now(), &snapshot);
            })
            .map_err(|e| e.to_string())?
    };
    match format {
        "json" => Ok(report.to_json_string() + "\n"),
        _ => {
            let mut out =
                format!("serving {subjects} subject(s), {postings} posting(s) across 4 shard(s)\n");
            out.push_str(&report.to_table());
            let firing: Vec<&str> = engine
                .status()
                .iter()
                .filter(|s| s.firing)
                .map(|s| s.name.as_str())
                .collect();
            out.push_str(&format!(
                "slos firing: {}\n",
                if firing.is_empty() {
                    "-".to_string()
                } else {
                    firing.join(",")
                }
            ));
            Ok(out)
        }
    }
}

/// `wfsm recover`: a read-only recovery report over a durable data dir.
/// Never repairs anything, so two runs over the same dir are
/// byte-identical.
fn recover(args: &ParsedArgs) -> Result<String, String> {
    let dir = args.require("data-dir")?;
    let format = parse_format(args, "text", &["text", "json"])?;
    let storage = DurableStorage::open_dir(Path::new(dir)).map_err(|e| e.to_string())?;
    let report = storage.recovery_report().map_err(|e| e.to_string())?;
    Ok(match format {
        "json" => report.to_json_string() + "\n",
        _ => report.to_table(),
    })
}

/// Runs the deterministic workload behind `wfsm timeline` / `wfsm
/// profile`: the serving request loop (`--workload serve`, the default)
/// or a batched mining run (`--workload mine`), with a time-series store
/// scraping the shared telemetry registry on the simulated clock.
/// Returns the registry (whose flight recorder holds the workload's
/// traces) and the scraped timeline.
fn observed_workload(args: &ParsedArgs) -> Result<(Arc<Telemetry>, Arc<TimeSeriesStore>), String> {
    let chaos_seed: Option<u64> = args
        .opt("chaos-seed")
        .map(|v| v.parse().map_err(|e| format!("bad --chaos-seed: {e}")))
        .transpose()?;
    let fail_rate: f64 = args
        .opt("fail-rate")
        .map(|v| v.parse().map_err(|e| format!("bad --fail-rate: {e}")))
        .transpose()?
        .unwrap_or(0.05);
    if args.opt("fail-rate").is_some() && chaos_seed.is_none() {
        return Err("--fail-rate requires --chaos-seed".into());
    }
    if !(0.0..=1.0).contains(&fail_rate) {
        return Err(format!("--fail-rate must be in [0, 1], got {fail_rate}"));
    }
    let docs: usize = parse_positive(args, "docs", 40usize)?;
    let interval: u64 = parse_positive(args, "interval", DEFAULT_SCRAPE_INTERVAL_MS)?;
    match args.opt("workload").unwrap_or("serve") {
        "serve" => {
            use wf_sentiment::{SentimentServingBackend, ShardedSentimentIndex};
            let cluster = Cluster::new(4).map_err(|e| e.to_string())?;
            let raw: Vec<RawDocument> = synthetic_serving_docs(docs)
                .iter()
                .enumerate()
                .map(|(i, text)| {
                    RawDocument::new(format!("serve://doc{i}"), SourceKind::Web, text.clone())
                })
                .collect();
            Ingestor::new(cluster.store()).ingest_batch(raw);
            let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
            cluster.run_pipeline(&pipeline);
            let index = ShardedSentimentIndex::build_from_store(cluster.store());
            let backend = SentimentServingBackend::new(index);
            let telemetry = Arc::clone(cluster.telemetry());
            let timeline = Arc::new(TimeSeriesStore::new(DEFAULT_TIMELINE_CAPACITY, interval));
            let config = wf_platform::ServingConfig {
                seed: parse_positive(args, "seed", 20050405u64)?,
                clients: parse_positive(args, "clients", 8u32)?,
                qps: parse_positive(args, "qps", 200u64)?,
                requests: parse_positive(args, "requests", 400u64)?,
                cache_capacity: args
                    .opt("cache")
                    .map(|v| v.parse().map_err(|e| format!("bad --cache: {e}")))
                    .transpose()?
                    .unwrap_or(64),
                queue_capacity: parse_positive(args, "queue", 32usize)?,
                ..wf_platform::ServingConfig::default()
            };
            let requests = config.requests;
            let mut serve_loop = wf_platform::ServeLoop::new(
                &backend,
                Arc::clone(&telemetry),
                config,
                serving_workload(),
            )
            .with_timeline(Arc::clone(&timeline));
            if let Some(seed) = chaos_seed {
                serve_loop = serve_loop
                    .with_fault_plan(FaultPlan::uniform(seed, fail_rate))
                    .with_trigger(requests / 3, || {
                        backend.set_shard_health(1, NodeHealth::Degraded)
                    })
                    .with_trigger(requests / 2, || {
                        backend.set_shard_health(2, NodeHealth::Down)
                    });
            }
            serve_loop.run().map_err(|e| e.to_string())?;
            Ok((telemetry, timeline))
        }
        "mine" => {
            let cluster = Cluster::new(4).map_err(|e| e.to_string())?;
            let timeline = cluster.enable_timeline(DEFAULT_TIMELINE_CAPACITY, interval);
            let telemetry = Arc::clone(cluster.telemetry());
            let raw: Vec<RawDocument> = synthetic_serving_docs(docs)
                .iter()
                .enumerate()
                .map(|(i, text)| {
                    RawDocument::new(format!("mine://doc{i}"), SourceKind::Web, text.clone())
                })
                .collect();
            let mut root = telemetry.trace_root("mine");
            Ingestor::new(cluster.store()).ingest_batch_traced(raw, &mut root);
            cluster.advance_clock(root.elapsed_sim_ms());
            let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
            match chaos_seed {
                Some(seed) => {
                    // chaos runs take the fault-aware per-entity path
                    root.finish();
                    cluster.set_fault_plan(Some(FaultPlan::uniform(seed, fail_rate)));
                    cluster.run_pipeline(&pipeline);
                }
                None => {
                    // batched hot path: per-stage nlp.* attribution
                    let ingest_ms = root.elapsed_sim_ms();
                    pipeline.run_batched_traced(cluster.store(), 8, &mut root);
                    cluster.advance_clock(root.elapsed_sim_ms() - ingest_ms);
                    root.finish();
                }
            }
            cluster.flush_timeline();
            Ok((telemetry, timeline))
        }
        other => Err(format!("unknown --workload {other:?} (serve|mine)")),
    }
}

/// Metrics-over-time for a deterministic workload run.
fn timeline(args: &ParsedArgs) -> Result<String, String> {
    let format = parse_format(args, "table", &["table", "json"])?;
    let (_telemetry, store) = observed_workload(args)?;
    let timeline = store.timeline();
    Ok(match format {
        "json" => timeline.to_json_string() + "\n",
        _ => timeline.to_table(),
    })
}

/// Self/total-time profile of a deterministic workload's trace spans.
fn profile(args: &ParsedArgs) -> Result<String, String> {
    let format = parse_format(args, "text", &["text", "collapsed", "json"])?;
    let last: usize = args
        .opt("last")
        .map(|v| v.parse().map_err(|e| format!("bad --last: {e}")))
        .transpose()?
        .unwrap_or(usize::MAX);
    let (telemetry, _timeline) = observed_workload(args)?;
    let profile = Profile::from_recorder(telemetry.recorder(), last);
    Ok(match format {
        "collapsed" => profile.to_collapsed(),
        "json" => profile.to_json_string() + "\n",
        _ => profile.to_text(),
    })
}

/// Runs the deterministic workload and queries its structured event log.
fn logs(args: &ParsedArgs) -> Result<String, String> {
    let format = parse_format(args, "text", &["text", "json"])?;
    let mut filter = LogFilter::default();
    if let Some(level) = args.opt("level") {
        filter.max_level = Some(Level::parse(level)?);
    }
    if let Some(prefix) = args.opt("target") {
        filter.target_prefix = Some(prefix.to_string());
    }
    if let Some(trace) = args.opt("trace") {
        filter.trace = Some(trace.parse().map_err(|e| format!("bad --trace: {e}"))?);
    }
    if let Some(since) = args.opt("since") {
        filter.since = Some(since.parse().map_err(|e| format!("bad --since: {e}"))?);
    }
    if let Some(until) = args.opt("until") {
        filter.until = Some(until.parse().map_err(|e| format!("bad --until: {e}"))?);
    }
    for term in &args.positional {
        filter.add_term(term)?;
    }
    let (telemetry, _timeline) = observed_workload(args)?;
    let snapshot = telemetry.evlog().snapshot().filtered(&filter);
    Ok(match format {
        "json" => snapshot.to_json_string(),
        _ => snapshot.to_text(),
    })
}

/// Diffs two exported run artifacts (metrics snapshots or profile trees).
fn diff(args: &ParsedArgs) -> Result<String, String> {
    let format = parse_format(args, "text", &["text", "json"])?;
    let [a, b] = args.positional.as_slice() else {
        return Err(
            "diff needs exactly two artifact paths: wfsm diff RUN_A.json RUN_B.json".into(),
        );
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let diff = RunDiff::between_texts(&read(a)?, &read(b)?)?;
    Ok(match format {
        "json" => diff.to_json_string(),
        _ => diff.to_text(),
    })
}

fn gen_corpus(args: &ParsedArgs) -> Result<String, String> {
    use wf_corpus::{
        camera_reviews, music_reviews, petroleum_web, pharma_web, ReviewConfig, WebConfig,
    };
    let domain = args.require("domain")?;
    let out = args.require("out")?.to_string();
    let seed: u64 = args
        .opt("seed")
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(20050405);
    let docs: usize = args
        .opt("docs")
        .map(|v| v.parse().map_err(|e| format!("bad --docs: {e}")))
        .transpose()?
        .unwrap_or(50);
    let texts: Vec<String> = match domain {
        "camera" => camera_reviews(
            seed,
            &ReviewConfig {
                n_plus: docs,
                n_minus: 0,
                ..ReviewConfig::camera()
            },
        )
        .d_plus_texts(),
        "music" => music_reviews(
            seed,
            &ReviewConfig {
                n_plus: docs,
                n_minus: 0,
                ..ReviewConfig::music()
            },
        )
        .d_plus_texts(),
        "petroleum" => petroleum_web(
            seed,
            &WebConfig {
                n_docs: docs,
                ..WebConfig::standard()
            },
        )
        .d_plus_texts(),
        "pharma" => pharma_web(
            seed,
            &WebConfig {
                n_docs: docs,
                ..WebConfig::standard()
            },
        )
        .d_plus_texts(),
        other => {
            return Err(format!(
                "unknown domain {other:?} (camera|music|petroleum|pharma)"
            ))
        }
    };
    let content = texts.join("\n");
    std::fs::write(&out, content).map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "wrote {} {domain} documents to {out}\n",
        texts.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, content: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wfsm-test-{name}-{}", std::process::id()));
        std::fs::write(&p, content).unwrap();
        p
    }

    fn run_tokens(tokens: &[&str]) -> Result<String, String> {
        let parsed = ParsedArgs::parse(tokens.iter().map(|s| s.to_string())).unwrap();
        run(&parsed)
    }

    #[test]
    fn analyze_from_file() {
        let f = temp_file(
            "analyze",
            "The Canon takes excellent pictures. The Nikon is terrible.",
        );
        let out = run_tokens(&[
            "analyze",
            "--subjects",
            "Canon,Nikon",
            "--file",
            f.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("[+] Canon"), "{out}");
        assert!(out.contains("[-] Nikon"), "{out}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn entities_from_file() {
        let f = temp_file("entities", "Zorblax delivered excellent results.");
        let out = run_tokens(&["entities", "--file", f.to_str().unwrap()]).unwrap();
        assert!(out.contains("[+] Zorblax"), "{out}");
        std::fs::remove_file(f).ok();
    }

    #[test]
    fn features_from_files() {
        let dp = temp_file(
            "dplus",
            "The battery lasts long. The picture quality is superb.\n\
             The battery charges fast. The picture quality shines.\n\
             The battery holds up. The picture quality impressed me.\n",
        );
        let dm = temp_file(
            "dminus",
            "The committee met on Monday.\nThe team won again.\nThe weather held.\n\
             Voters lined up early.\nThe festival was crowded.\n",
        );
        let out = run_tokens(&[
            "features",
            dp.to_str().unwrap(),
            dm.to_str().unwrap(),
            "--top",
            "5",
        ])
        .unwrap();
        assert!(out.contains("battery"), "{out}");
        assert!(out.contains("picture quality"), "{out}");
        std::fs::remove_file(dp).ok();
        std::fs::remove_file(dm).ok();
    }

    #[test]
    fn mine_then_query_round_trip() {
        let docs = temp_file(
            "docs",
            "The Canon takes excellent pictures.\nThe Canon battery is terrible.\n",
        );
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-snap-{}.jsonl", std::process::id()));
        let out = run_tokens(&[
            "mine",
            "--input",
            docs.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--subjects",
            "Canon",
        ])
        .unwrap();
        assert!(out.contains("mined 2 documents"), "{out}");
        let out = run_tokens(&[
            "query",
            "--snapshot",
            snap.to_str().unwrap(),
            "--subject",
            "Canon",
            "--polarity",
            "+",
        ])
        .unwrap();
        assert!(out.contains("excellent pictures"), "{out}");
        assert!(out.contains("1 hit(s)"), "{out}");
        std::fs::remove_file(docs).ok();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn mine_under_chaos_reports_and_stays_deterministic() {
        let docs = temp_file(
            "chaosdocs",
            "The Canon takes excellent pictures.\nThe Canon battery is terrible.\n\
             The Canon lens is sharp.\nThe Canon flash misfires.\n",
        );
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-chaos-{}.jsonl", std::process::id()));
        let run = || {
            run_tokens(&[
                "mine",
                "--input",
                docs.to_str().unwrap(),
                "--snapshot",
                snap.to_str().unwrap(),
                "--subjects",
                "Canon",
                "--chaos-seed",
                "77",
                "--fail-rate",
                "0.2",
            ])
            .unwrap()
        };
        let first = run();
        assert!(first.contains("chaos: seed 77, fail rate 0.2"), "{first}");
        assert!(first.contains("sim ms"), "{first}");
        assert_eq!(first, run(), "same seed must reproduce the same report");
        std::fs::remove_file(docs).ok();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn mine_exports_byte_identical_metrics() {
        let docs = temp_file(
            "metricdocs",
            "The Canon takes excellent pictures.\nThe Canon battery is terrible.\n\
             The Canon lens is sharp.\nThe Canon flash misfires.\n",
        );
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-msnap-{}.jsonl", std::process::id()));
        let mut m1 = std::env::temp_dir();
        m1.push(format!("wfsm-m1-{}.json", std::process::id()));
        let mut m2 = std::env::temp_dir();
        m2.push(format!("wfsm-m2-{}.json", std::process::id()));
        let run = |metrics: &std::path::Path| {
            run_tokens(&[
                "mine",
                "--input",
                docs.to_str().unwrap(),
                "--snapshot",
                snap.to_str().unwrap(),
                "--subjects",
                "Canon",
                "--chaos-seed",
                "77",
                "--fail-rate",
                "0.2",
                "--metrics",
                metrics.to_str().unwrap(),
            ])
            .unwrap()
        };
        run(&m1);
        run(&m2);
        let j1 = std::fs::read(&m1).unwrap();
        let j2 = std::fs::read(&m2).unwrap();
        assert!(!j1.is_empty());
        assert_eq!(j1, j2, "same seed must export byte-identical metrics");
        // the exported file renders as a table through `wfsm metrics`
        let table = run_tokens(&["metrics", "--file", m1.to_str().unwrap()]).unwrap();
        assert!(table.contains("COUNTERS"), "{table}");
        assert!(table.contains("pipeline.entities_in"), "{table}");
        // and --json round-trips the exact bytes
        let json = run_tokens(&["metrics", "--file", m1.to_str().unwrap(), "--json"]).unwrap();
        assert_eq!(json.as_bytes(), j1.as_slice());
        for p in [&docs, &snap, &m1, &m2] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn metrics_from_input_runs_pipeline() {
        let docs = temp_file("metricinput", "The Canon takes excellent pictures.\n");
        let out = run_tokens(&[
            "metrics",
            "--input",
            docs.to_str().unwrap(),
            "--subjects",
            "Canon",
        ])
        .unwrap();
        assert!(out.contains("pipeline.processed"), "{out}");
        assert!(out.contains("store.insert"), "{out}");
        std::fs::remove_file(docs).ok();
    }

    #[test]
    fn metrics_requires_a_source() {
        let err = run_tokens(&["metrics"]).unwrap_err();
        assert!(err.contains("--file") && err.contains("--input"), "{err}");
    }

    #[test]
    fn chaos_flags_are_validated() {
        let err = run_tokens(&[
            "mine",
            "--input",
            "x",
            "--snapshot",
            "y",
            "--fail-rate",
            "0.2",
        ])
        .unwrap_err();
        assert!(err.contains("--fail-rate requires --chaos-seed"), "{err}");
        let err = run_tokens(&[
            "mine",
            "--input",
            "x",
            "--snapshot",
            "y",
            "--chaos-seed",
            "1",
            "--fail-rate",
            "1.5",
        ])
        .unwrap_err();
        assert!(err.contains("must be in [0, 1]"), "{err}");
    }

    #[test]
    fn search_over_snapshot() {
        let docs = temp_file(
            "searchdocs",
            "The Canon takes excellent pictures.\nThe song has a great chorus.\n",
        );
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-search-{}.jsonl", std::process::id()));
        run_tokens(&[
            "mine",
            "--input",
            docs.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--subjects",
            "Canon",
        ])
        .unwrap();
        let out = run_tokens(&[
            "search",
            "--snapshot",
            snap.to_str().unwrap(),
            "--query",
            "excellent AND NOT chorus",
        ])
        .unwrap();
        assert!(out.contains("1 document(s)"), "{out}");
        let out = run_tokens(&[
            "search",
            "--snapshot",
            snap.to_str().unwrap(),
            "--query",
            "concept:sentiment:polarity=+",
        ])
        .unwrap();
        assert!(out.contains("1 document(s)"), "{out}");
        std::fs::remove_file(docs).ok();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn mine_explain_profiles_every_query_kind() {
        let docs = temp_file(
            "explaindocs",
            "The Canon takes excellent pictures.\nThe Canon battery is terrible.\n\
             The Canon lens is sharp.\nThe Canon flash misfires.\n",
        );
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-explain-{}.jsonl", std::process::id()));
        let out = run_tokens(&[
            "mine",
            "--input",
            docs.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--subjects",
            "Canon",
            "--explain",
        ])
        .unwrap();
        assert!(out.contains("QUERY PROFILES (EXPLAIN)"), "{out}");
        // one profiled plan per query family, each with scan/cost columns
        for kind in ["\nand ", "\n  not ", "phrase(", "meta_range(", "regex("] {
            assert!(out.contains(kind), "missing {kind:?} in:\n{out}");
        }
        assert!(out.contains("scanned="), "{out}");
        assert!(out.contains("sim_ms="), "{out}");
        // the range query actually selects the 0000..0002 line window
        assert!(out.contains("meta_range(line=[0000..0002])"), "{out}");
        std::fs::remove_file(docs).ok();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn search_explain_prints_the_plan() {
        let docs = temp_file(
            "searchexplain",
            "The Canon takes excellent pictures.\nThe song has a great chorus.\n",
        );
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-sexplain-{}.jsonl", std::process::id()));
        run_tokens(&[
            "mine",
            "--input",
            docs.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_tokens(&[
            "search",
            "--snapshot",
            snap.to_str().unwrap(),
            "--query",
            "excellent AND NOT chorus",
            "--explain",
        ])
        .unwrap();
        assert!(out.contains("1 document(s)"), "{out}");
        assert!(out.contains("plan:"), "{out}");
        assert!(out.contains("\nand "), "{out}");
        assert!(out.contains("term(excellent)"), "{out}");
        std::fs::remove_file(docs).ok();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn trace_exports_are_deterministic_across_runs() {
        let docs = temp_file(
            "tracedocs",
            "The Canon takes excellent pictures.\nThe Canon battery is terrible.\n\
             The Canon lens is sharp.\nThe Canon flash misfires.\n",
        );
        let run = |format: &str| {
            run_tokens(&[
                "trace",
                "--input",
                docs.to_str().unwrap(),
                "--subjects",
                "Canon",
                "--chaos-seed",
                "77",
                "--fail-rate",
                "0.2",
                "--format",
                format,
            ])
            .unwrap()
        };
        for format in ["text", "json", "chrome"] {
            assert_eq!(
                run(format),
                run(format),
                "same seed must export byte-identical {format} traces"
            );
        }
        let text = run("text");
        assert!(text.contains("mine"), "{text}");
        assert!(text.contains("shard:"), "{text}");
        let json = run("json");
        assert!(json.contains("\"ingest.batch\""), "{json}");
        assert!(json.contains("\"pipeline.run\""), "{json}");
        let chrome = run("chrome");
        assert!(chrome.contains("\"traceEvents\""), "{chrome}");
        std::fs::remove_file(docs).ok();
    }

    #[test]
    fn trace_rejects_unknown_format() {
        let docs = temp_file("tracefmt", "one line\n");
        let err = run_tokens(&[
            "trace",
            "--input",
            docs.to_str().unwrap(),
            "--format",
            "xml",
        ])
        .unwrap_err();
        assert!(err.contains("unknown --format"), "{err}");
        std::fs::remove_file(docs).ok();
    }

    #[test]
    fn mine_metrics_to_unwritable_path_errors() {
        let docs = temp_file("metricbadpath", "one line\n");
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-badmetrics-{}.jsonl", std::process::id()));
        let err = run_tokens(&[
            "mine",
            "--input",
            docs.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--metrics",
            "/nonexistent-dir/metrics.json",
        ])
        .unwrap_err();
        assert!(
            err.contains("cannot write /nonexistent-dir/metrics.json"),
            "{err}"
        );
        std::fs::remove_file(docs).ok();
        std::fs::remove_file(snap).ok();
    }

    /// A scratch path for a durable data dir (not created; `at_dir`
    /// creates it, and the test removes it afterwards).
    fn temp_data_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wfsm-test-dir-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn mine_with_data_dir_then_recover() {
        // 8 sentiment-bearing lines: every one of the 4 shards gets docs
        // and post-checkpoint mining updates in its WAL
        let docs = temp_file(
            "minedurable",
            "The Canon takes excellent pictures.\nThe Nikon is terrible.\n\
             The Sony is excellent.\nThe Kodak is terrible.\n\
             The Leica is excellent.\nThe Pentax is terrible.\n\
             The Fuji is excellent.\nThe Olympus is terrible.\n",
        );
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-minedurable-{}.jsonl", std::process::id()));
        let dir = temp_data_dir("minedurable");
        let out = run_tokens(&[
            "mine",
            "--input",
            docs.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--data-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("durable:"), "{out}");
        assert!(out.contains("wfsm recover"), "{out}");

        // text report lists every shard and why replay stopped
        let text = run_tokens(&["recover", "--data-dir", dir.to_str().unwrap()]).unwrap();
        assert!(text.contains("SHARD"), "{text}");
        assert_eq!(text.matches("end_of_log").count(), 4, "{text}");
        assert!(text.contains("clean"), "{text}");

        // recover is read-only: double-run JSON is byte-identical, and the
        // WAL holds the post-checkpoint mining annotations (replay > 0)
        let json = |()| {
            run_tokens(&[
                "recover",
                "--data-dir",
                dir.to_str().unwrap(),
                "--format",
                "json",
            ])
            .unwrap()
        };
        let (first, second) = (json(()), json(()));
        assert_eq!(first, second);
        assert!(first.contains("\"replayed\""), "{first}");
        assert!(!first.contains("\"replayed\": 0"), "{first}");

        std::fs::remove_file(docs).ok();
        std::fs::remove_file(snap).ok();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recover_requires_durable_layout() {
        let dir = temp_data_dir("recoverempty");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run_tokens(&["recover", "--data-dir", dir.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("no shard-"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recover_rejects_unknown_format() {
        let err = run_tokens(&["recover", "--data-dir", "/tmp", "--format", "xml"]).unwrap_err();
        assert!(err.contains("unknown --format"), "{err}");
    }

    #[test]
    fn mine_data_dir_unwritable_path_errors_cleanly() {
        let docs = temp_file("minedurbad", "one line\n");
        // a path under an existing *file* cannot be created even as root
        let blocker = temp_file("minedurblocker", "");
        let bad = blocker.join("sub");
        let mut snap = std::env::temp_dir();
        snap.push(format!("wfsm-minedurbad-{}.jsonl", std::process::id()));
        let err = run_tokens(&[
            "mine",
            "--input",
            docs.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--data-dir",
            bad.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("cannot create data dir"), "{err}");
        std::fs::remove_file(docs).ok();
        std::fs::remove_file(blocker).ok();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn serve_data_dir_unwritable_path_errors_cleanly() {
        let blocker = temp_file("servedurblocker", "");
        let bad = blocker.join("sub");
        let err = run_tokens(&[
            "serve",
            "--docs",
            "8",
            "--requests",
            "20",
            "--data-dir",
            bad.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("cannot create data dir"), "{err}");
        std::fs::remove_file(blocker).ok();
    }

    #[test]
    fn serve_durable_chaos_json_is_byte_identical_across_runs() {
        let dir = temp_data_dir("servedurable");
        let run = |()| {
            run_tokens(&[
                "serve",
                "--docs",
                "24",
                "--requests",
                "90",
                "--chaos-seed",
                "7",
                "--fail-rate",
                "0.1",
                "--data-dir",
                dir.to_str().unwrap(),
                "--format",
                "json",
            ])
            .unwrap()
        };
        let (first, second) = (run(()), run(()));
        assert_eq!(first, second);
        // the crash/restart left a recoverable durable layout behind
        let report = run_tokens(&[
            "recover",
            "--data-dir",
            dir.to_str().unwrap(),
            "--format",
            "json",
        ])
        .unwrap();
        assert!(report.contains("\"shard\": 2"), "{report}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn doctor_json_is_byte_identical_across_runs() {
        let run = || {
            run_tokens(&[
                "doctor",
                "--chaos-seed",
                "20050405",
                "--fail-rate",
                "0.15",
                "--docs",
                "24",
                "--rounds",
                "2",
                "--format",
                "json",
            ])
            .unwrap()
        };
        let first = run();
        assert_eq!(first, run(), "same seed must produce identical reports");
        assert!(first.contains("\"slos\""), "{first}");
        assert!(first.contains("\"bus-call-p99\""), "{first}");
        assert!(first.contains("\"nodes\""), "{first}");
        assert!(first.contains("\"exemplars\""), "{first}");
    }

    #[test]
    fn doctor_text_reports_slos_alerts_and_nodes() {
        let out = run_tokens(&[
            "doctor",
            "--chaos-seed",
            "20050405",
            "--docs",
            "24",
            "--rounds",
            "2",
        ])
        .unwrap();
        assert!(out.contains("DOCTOR REPORT @"), "{out}");
        assert!(out.contains("SLOS"), "{out}");
        assert!(out.contains("bus-call-p99"), "{out}");
        assert!(out.contains("ALERTS"), "{out}");
        assert!(out.contains("EXEMPLARS"), "{out}");
        assert!(out.contains("NODES"), "{out}");
        // chaos downs node 2: the scoreboard shows it
        assert!(out.contains("Down"), "{out}");
    }

    #[test]
    fn doctor_rejects_unknown_format() {
        let err = run_tokens(&["doctor", "--rounds", "1", "--format", "yaml"]).unwrap_err();
        assert!(err.contains("unknown --format"), "{err}");
        assert!(err.contains("(text|json)"), "{err}");
    }

    #[test]
    fn top_watch_renders_deterministic_frames() {
        let run = || {
            run_tokens(&[
                "top",
                "--chaos-seed",
                "20050405",
                "--docs",
                "24",
                "--watch",
                "2",
            ])
            .unwrap()
        };
        let first = run();
        assert_eq!(first, run(), "same seed must render identical frames");
        assert!(first.contains("FRAME 1 @"), "{first}");
        assert!(first.contains("FRAME 2 @"), "{first}");
        assert!(first.contains("NODES"), "{first}");
        assert!(first.contains("slos firing:"), "{first}");
        let err = run_tokens(&["top", "--watch", "0"]).unwrap_err();
        assert!(err.contains("--watch"), "{err}");
    }

    #[test]
    fn gen_corpus_then_mine() {
        let mut out = std::env::temp_dir();
        out.push(format!("wfsm-corpus-{}.txt", std::process::id()));
        let report = run_tokens(&[
            "gen-corpus",
            "--domain",
            "camera",
            "--out",
            out.to_str().unwrap(),
            "--docs",
            "5",
        ])
        .unwrap();
        assert!(report.contains("wrote 5 camera documents"), "{report}");
        let content = std::fs::read_to_string(&out).unwrap();
        assert_eq!(content.lines().count(), 5);
        std::fs::remove_file(out).ok();
    }

    #[test]
    fn gen_corpus_rejects_unknown_domain() {
        let err = run_tokens(&["gen-corpus", "--domain", "cooking", "--out", "x"]).unwrap_err();
        assert!(err.contains("unknown domain"));
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run_tokens(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn help_and_empty() {
        assert!(run_tokens(&["help"]).unwrap().contains("USAGE"));
        assert!(run_tokens(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn missing_options_error_cleanly() {
        assert!(run_tokens(&["analyze"]).unwrap_err().contains("--subjects"));
        assert!(run_tokens(&["query", "--subject", "x"])
            .unwrap_err()
            .contains("--snapshot"));
        assert!(run_tokens(&["features"])
            .unwrap_err()
            .contains("positional"));
    }

    #[test]
    fn serve_one_shot_subject_both_formats() {
        let text = run_tokens(&["serve", "--docs", "20", "--subject", "Canon"]).unwrap();
        assert!(text.contains("canon:"), "{text}");
        assert!(text.contains("positive"), "{text}");
        let json = run_tokens(&[
            "serve",
            "--docs",
            "20",
            "--subject",
            "Canon",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(json.contains("\"subject\":\"canon\""), "{json}");
        assert!(json.contains("\"postings\":"), "{json}");
    }

    #[test]
    fn serve_one_shot_top_k() {
        let out = run_tokens(&["serve", "--docs", "20", "--top", "2", "--polarity", "-"]).unwrap();
        assert!(out.contains("top 2 by -"), "{out}");
        assert!(out.contains("1."), "{out}");
    }

    #[test]
    fn serve_unknown_subject_is_a_clean_error() {
        let err = run_tokens(&["serve", "--docs", "20", "--subject", "zorblax"]).unwrap_err();
        assert!(err.contains("not found"), "{err}");
        assert!(err.contains("zorblax"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(run_tokens(&["serve", "--format", "yaml"])
            .unwrap_err()
            .contains("unknown --format"));
        assert!(run_tokens(&["serve", "--clients", "0"])
            .unwrap_err()
            .contains("--clients must be at least 1"));
        assert!(run_tokens(&["serve", "--qps", "0"])
            .unwrap_err()
            .contains("--qps must be at least 1"));
        assert!(run_tokens(&["serve", "--requests", "0"])
            .unwrap_err()
            .contains("--requests must be at least 1"));
        assert!(run_tokens(&["serve", "--clients", "many"])
            .unwrap_err()
            .contains("bad --clients"));
        assert!(run_tokens(&["serve", "--docs", "0"])
            .unwrap_err()
            .contains("--docs must be at least 1"));
        assert!(run_tokens(&["serve", "--fail-rate", "0.5"])
            .unwrap_err()
            .contains("requires --chaos-seed"));
        assert!(
            run_tokens(&["serve", "--chaos-seed", "7", "--fail-rate", "1.5"])
                .unwrap_err()
                .contains("must be in [0, 1]")
        );
    }

    #[test]
    fn metrics_rejects_unknown_format_and_bad_values() {
        let docs = temp_file("metricfmt", "The Canon takes excellent pictures.\n");
        let err = run_tokens(&[
            "metrics",
            "--input",
            docs.to_str().unwrap(),
            "--format",
            "yaml",
        ])
        .unwrap_err();
        assert!(err.contains("unknown --format"), "{err}");
        assert!(err.contains("(table|json)"), "{err}");
        let err = run_tokens(&[
            "metrics",
            "--input",
            docs.to_str().unwrap(),
            "--chaos-seed",
            "not-a-number",
        ])
        .unwrap_err();
        assert!(err.contains("bad --chaos-seed"), "{err}");
        std::fs::remove_file(docs).ok();
    }

    #[test]
    fn serve_rejects_bad_seed_queue_and_cache_values() {
        assert!(run_tokens(&["serve", "--seed", "soon"])
            .unwrap_err()
            .contains("bad --seed"));
        assert!(run_tokens(&["serve", "--queue", "0"])
            .unwrap_err()
            .contains("--queue must be at least 1"));
        assert!(run_tokens(&["serve", "--cache", "lots"])
            .unwrap_err()
            .contains("bad --cache"));
        assert!(run_tokens(&["serve", "--chaos-seed", "x"])
            .unwrap_err()
            .contains("bad --chaos-seed"));
    }

    #[test]
    fn timeline_serve_workload_is_deterministic() {
        let args = [
            "timeline",
            "--docs",
            "20",
            "--clients",
            "4",
            "--qps",
            "300",
            "--requests",
            "60",
            "--interval",
            "25",
            "--format",
            "json",
        ];
        let a = run_tokens(&args).unwrap();
        let b = run_tokens(&args).unwrap();
        assert_eq!(a, b, "same seed must export byte-identical timelines");
        assert!(a.contains("\"serving.requests\""), "{a}");
        assert!(a.contains("\"increase\""), "{a}");
        let mut table_args = args.to_vec();
        table_args.truncate(table_args.len() - 2);
        let table = run_tokens(&table_args).unwrap();
        assert!(table.contains("TIMELINE"), "{table}");
        assert!(table.contains("serving.requests"), "{table}");
    }

    #[test]
    fn timeline_mine_workload_scrapes_cluster_ops() {
        let out = run_tokens(&[
            "timeline",
            "--workload",
            "mine",
            "--docs",
            "16",
            "--interval",
            "5",
        ])
        .unwrap();
        assert!(out.contains("pipeline.processed"), "{out}");
    }

    #[test]
    fn timeline_and_profile_reject_bad_flags() {
        assert!(run_tokens(&["timeline", "--format", "csv"])
            .unwrap_err()
            .contains("unknown --format"));
        assert!(run_tokens(&["timeline", "--workload", "bake"])
            .unwrap_err()
            .contains("unknown --workload"));
        assert!(run_tokens(&["timeline", "--interval", "0"])
            .unwrap_err()
            .contains("--interval must be at least 1"));
        assert!(run_tokens(&["profile", "--format", "svg"])
            .unwrap_err()
            .contains("unknown --format"));
        assert!(run_tokens(&["profile", "--last", "few"])
            .unwrap_err()
            .contains("bad --last"));
        assert!(run_tokens(&["profile", "--fail-rate", "0.5"])
            .unwrap_err()
            .contains("requires --chaos-seed"));
    }

    #[test]
    fn profile_serve_workload_attributes_stages() {
        let args = [
            "profile",
            "--docs",
            "20",
            "--clients",
            "4",
            "--qps",
            "300",
            "--requests",
            "60",
        ];
        let text = run_tokens(&args).unwrap();
        assert!(text.contains("serve.query"), "{text}");
        assert!(text.contains("cache_lookup"), "{text}");
        assert!(text.contains("shard_fanout"), "{text}");
        let mut collapsed_args = args.to_vec();
        collapsed_args.extend_from_slice(&["--format", "collapsed"]);
        let a = run_tokens(&collapsed_args).unwrap();
        let b = run_tokens(&collapsed_args).unwrap();
        assert_eq!(a, b, "same seed must export byte-identical stacks");
        assert!(a.contains("serve.query;"), "{a}");
    }

    #[test]
    fn profile_mine_workload_shows_nlp_stages() {
        let out = run_tokens(&["profile", "--workload", "mine", "--docs", "16"]).unwrap();
        for stage in [
            "nlp.tokenize",
            "nlp.pos",
            "nlp.chunk",
            "nlp.clause",
            "nlp.ner",
        ] {
            assert!(out.contains(stage), "missing {stage} in:\n{out}");
        }
    }

    #[test]
    fn serve_loop_reports_and_is_deterministic() {
        let args = [
            "serve",
            "--docs",
            "20",
            "--clients",
            "4",
            "--qps",
            "300",
            "--requests",
            "80",
        ];
        let text = run_tokens(&args).unwrap();
        assert!(text.contains("slos firing:"), "{text}");
        assert!(text.contains("requests"), "{text}");

        let mut json_args = args.to_vec();
        json_args.extend_from_slice(&["--format", "json"]);
        let a = run_tokens(&json_args).unwrap();
        let b = run_tokens(&json_args).unwrap();
        assert_eq!(a, b, "same-seed serve runs must be byte-identical");
        assert!(a.contains("\"requests\": 80"), "{a}");
    }

    /// Small chaos workload shared by the `logs` / `diff` tests: enough
    /// faults that the event log is non-empty, small enough to be fast.
    const LOGS_ARGS: [&str; 13] = [
        "logs",
        "--chaos-seed",
        "7",
        "--fail-rate",
        "0.2",
        "--docs",
        "20",
        "--clients",
        "4",
        "--qps",
        "300",
        "--requests",
        "80",
    ];

    #[test]
    fn logs_text_and_json_are_deterministic() {
        let a = run_tokens(&LOGS_ARGS).unwrap();
        let b = run_tokens(&LOGS_ARGS).unwrap();
        assert_eq!(a, b, "same-seed logs must be byte-identical");
        assert!(a.starts_with("evlog: emitted="), "{a}");
        assert!(a.contains("serving.loop"), "{a}");

        let mut json_args = LOGS_ARGS.to_vec();
        json_args.extend_from_slice(&["--format", "json"]);
        let ja = run_tokens(&json_args).unwrap();
        let jb = run_tokens(&json_args).unwrap();
        assert_eq!(ja, jb, "same-seed json logs must be byte-identical");
        assert!(ja.contains("\"records\""), "{ja}");
    }

    #[test]
    fn logs_filters_compose() {
        let mut args = LOGS_ARGS.to_vec();
        args.extend_from_slice(&["--level", "warn", "--target", "serving."]);
        args.push("kind=node_down");
        let out = run_tokens(&args).unwrap();
        for line in out.lines().skip(1) {
            assert!(line.contains("WARN"), "level filter leaked: {line}");
            assert!(
                line.contains("serving.loop"),
                "target filter leaked: {line}"
            );
            assert!(
                line.contains("kind=node_down"),
                "field filter leaked: {line}"
            );
        }
    }

    #[test]
    fn logs_rejects_bad_arguments() {
        let err = run_tokens(&["logs", "--format", "yaml"]).unwrap_err();
        assert_eq!(err, "unknown --format \"yaml\" (text|json)");
        let err = run_tokens(&["logs", "--level", "loud"]).unwrap_err();
        assert_eq!(err, "unknown level \"loud\" (error|warn|info|debug)");
        let err = run_tokens(&["logs", "not-a-term"]).unwrap_err();
        assert_eq!(err, "malformed filter \"not-a-term\" (expected key=value)");
        let err = run_tokens(&["logs", "--trace", "abc"]).unwrap_err();
        assert!(err.starts_with("bad --trace:"), "{err}");
        let err = run_tokens(&["logs", "--since", "soon"]).unwrap_err();
        assert!(err.starts_with("bad --since:"), "{err}");
    }

    #[test]
    fn diff_same_seed_runs_report_ok() {
        let mut args = LOGS_ARGS.to_vec();
        args[0] = "profile";
        args.extend_from_slice(&["--format", "json"]);
        let a = temp_file("diff-a", &run_tokens(&args).unwrap());
        let b = temp_file("diff-b", &run_tokens(&args).unwrap());
        let out = run_tokens(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]).unwrap();
        assert!(out.contains("— ok"), "{out}");
        assert!(out.contains("0 regression(s)"), "{out}");
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn diff_perturbed_run_attributes_regressions_deterministically() {
        let mut base = LOGS_ARGS.to_vec();
        base[0] = "profile";
        base.extend_from_slice(&["--format", "json"]);
        let mut perturbed = base.clone();
        perturbed[2] = "9"; // different chaos seed
        perturbed[4] = "0.35"; // heavier faults
        let a = temp_file("diff-base", &run_tokens(&base).unwrap());
        let b = temp_file("diff-pert", &run_tokens(&perturbed).unwrap());
        let args = [
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--format",
            "json",
        ];
        let out1 = run_tokens(&args).unwrap();
        let out2 = run_tokens(&args).unwrap();
        assert_eq!(out1, out2, "diff of fixed artifacts must be byte-identical");
        assert!(out1.contains("\"kind\": \"profile\""), "{out1}");
        assert!(
            !out1.contains("\"verdict\": \"ok\""),
            "perturbed run should not diff clean: {out1}"
        );
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn diff_rejects_bad_arguments() {
        let err = run_tokens(&["diff", "only-one.json"]).unwrap_err();
        assert!(err.contains("exactly two artifact paths"), "{err}");
        let a = temp_file("diff-real", "{\"counters\": {}}");
        let err = run_tokens(&["diff", a.to_str().unwrap(), "/no/such/file.json"]).unwrap_err();
        assert!(err.starts_with("cannot read /no/such/file.json:"), "{err}");
        let garbage = temp_file("diff-garbage", "not json at all");
        let err =
            run_tokens(&["diff", garbage.to_str().unwrap(), a.to_str().unwrap()]).unwrap_err();
        assert!(err.starts_with("run-a is not JSON:"), "{err}");
        let err = run_tokens(&[
            "diff",
            a.to_str().unwrap(),
            garbage.to_str().unwrap(),
            "--format",
            "yaml",
        ])
        .unwrap_err();
        assert_eq!(err, "unknown --format \"yaml\" (text|json)");
        std::fs::remove_file(a).ok();
        std::fs::remove_file(garbage).ok();
    }
}

//! Minimal argument parsing for the `wfsm` binary (no external deps).

use std::collections::BTreeMap;

/// A parsed command line: subcommand, `--key value` options, positionals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    pub command: String,
    pub options: BTreeMap<String, String>,
    pub flags: Vec<String>,
    pub positional: Vec<String>,
}

impl ParsedArgs {
    /// Parses `args` (without the program name). The first non-flag token
    /// is the subcommand; `--key value` pairs become options; `--flag`
    /// followed by another `--` token or nothing becomes a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<ParsedArgs, String> {
        let mut parsed = ParsedArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name '--'".into());
                }
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        parsed.options.insert(key.to_string(), value);
                    }
                    _ => parsed.flags.push(key.to_string()),
                }
            } else if parsed.command.is_empty() {
                parsed.command = arg;
            } else {
                parsed.positional.push(arg);
            }
        }
        Ok(parsed)
    }

    /// The value of an option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required option, with a helpful error.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.opt(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// True when a boolean flag was given.
    #[allow(dead_code)] // parser API surface; exercised in tests and future commands
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Splits a comma-separated option value.
    pub fn opt_list(&self, key: &str) -> Vec<String> {
        self.opt(key)
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn command_and_options() {
        let p = parse(&["analyze", "--subjects", "Canon,Nikon", "--file", "x.txt"]);
        assert_eq!(p.command, "analyze");
        assert_eq!(p.opt("subjects"), Some("Canon,Nikon"));
        assert_eq!(p.opt("file"), Some("x.txt"));
    }

    #[test]
    fn flags_without_values() {
        let p = parse(&["query", "--json", "--subject", "Canon"]);
        assert!(p.flag("json"));
        assert_eq!(p.opt("subject"), Some("Canon"));
        assert!(!p.flag("missing"));
    }

    #[test]
    fn positionals() {
        let p = parse(&["features", "dplus.txt", "dminus.txt"]);
        assert_eq!(p.positional, vec!["dplus.txt", "dminus.txt"]);
    }

    #[test]
    fn comma_lists() {
        let p = parse(&["analyze", "--subjects", "a, b ,,c"]);
        assert_eq!(p.opt_list("subjects"), vec!["a", "b", "c"]);
        assert!(p.opt_list("absent").is_empty());
    }

    #[test]
    fn require_reports_missing() {
        let p = parse(&["analyze"]);
        assert!(p.require("subjects").unwrap_err().contains("--subjects"));
    }

    #[test]
    fn consecutive_flags() {
        let p = parse(&["mine", "--verbose", "--json"]);
        assert!(p.flag("verbose"));
        assert!(p.flag("json"));
    }

    #[test]
    fn empty_input() {
        let p = parse(&[]);
        assert!(p.command.is_empty());
    }

    #[test]
    fn bare_double_dash_is_error() {
        assert!(ParsedArgs::parse(vec!["--".to_string()]).is_err());
    }
}

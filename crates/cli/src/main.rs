//! `wfsm`: command-line front end for the WebFountain sentiment-mining
//! reproduction. See `wfsm help` for usage.

mod args;
mod commands;

fn main() {
    let parsed = match args::ParsedArgs::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    };
    match commands::run(&parsed) {
        Ok(report) => print!("{report}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

//! Event-log-overhead benchmark: runs the serving-tier chaos workload
//! with the structured event log disabled (capacity 0) and enabled,
//! exporting `artifacts/BENCH_evlog.json`.
//!
//! The deterministic keys (emitted/kept/sampled/dropped counters, the
//! canonical record count) are regression sentinels for
//! `tools/bench_gate.py` — same seed ⇒ same values; the `*_wall_us`
//! keys get a tolerance and bound the real cost of leaving structured
//! logging on along the serving hot path.
//!
//! Run with `cargo bench -p wf-bench --bench evlog`.

use std::sync::Arc;
use std::time::Instant;
use wf_platform::{
    Cluster, FaultPlan, Ingestor, MinerPipeline, RawDocument, ServeLoop, ServingConfig, Telemetry,
    DEFAULT_EVLOG_CAPACITY,
};
use wf_sentiment::{AdhocSentimentMiner, SentimentServingBackend, ShardedSentimentIndex};

const DOCS: usize = 96;
const NODES: usize = 4;
const SEED: u64 = 20050405;
const CLIENTS: u32 = 16;
const QPS: u64 = 500;
const REQUESTS: u64 = 1200;
const FAIL_RATE: f64 = 0.1;

fn corpus() -> Vec<String> {
    const BRANDS: [&str; 5] = ["Canon", "Nikon", "Sony", "Kodak", "Pentax"];
    const MOODS: [&str; 4] = [
        "takes excellent pictures",
        "has a terrible battery",
        "produces sharp images",
        "suffers from blurry output",
    ];
    (0..DOCS)
        .map(|i| {
            format!(
                "{} {} in trial {i}.",
                BRANDS[i % BRANDS.len()],
                MOODS[i % MOODS.len()]
            )
        })
        .collect()
}

fn workload() -> Vec<String> {
    let mut pool = Vec::new();
    for _ in 0..4 {
        pool.push("sentiment of canon".to_string());
    }
    for _ in 0..2 {
        pool.push("sentiment of nikon".to_string());
    }
    pool.push("sentiment of sony".to_string());
    pool.push("sentiment of kodak".to_string());
    pool.push("sentiment of pentax".to_string());
    pool.push("top 3 +".to_string());
    pool.push("top 3 -".to_string());
    pool.push("sentiment of zorblax".to_string());
    pool
}

fn config() -> ServingConfig {
    ServingConfig {
        seed: SEED,
        clients: CLIENTS,
        qps: QPS,
        requests: REQUESTS,
        cache_capacity: 32,
        queue_capacity: 24,
        ..ServingConfig::default()
    }
}

/// One chaos serving run against a fresh telemetry whose event log has
/// the given capacity (0 = disabled); returns (telemetry, wall us).
fn serve_once(backend: &SentimentServingBackend, evlog_capacity: usize) -> (Arc<Telemetry>, u64) {
    let telemetry = Telemetry::with_capacities(1 << 15, evlog_capacity);
    let serve_loop = ServeLoop::new(backend, Arc::clone(&telemetry), config(), workload())
        .with_fault_plan(FaultPlan::uniform(SEED, FAIL_RATE));
    let t = Instant::now();
    serve_loop.run().unwrap();
    (telemetry, t.elapsed().as_micros() as u64)
}

fn main() {
    let cluster = Cluster::new(NODES).unwrap();
    let raw: Vec<RawDocument> = corpus()
        .iter()
        .enumerate()
        .map(|(i, text)| {
            RawDocument::new(
                format!("bench://evlog/{i}"),
                wf_platform::SourceKind::Web,
                text.clone(),
            )
        })
        .collect();
    Ingestor::new(cluster.store()).ingest_batch(raw);
    let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    cluster.run_pipeline(&pipeline);
    let backend =
        SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(cluster.store()));

    // warm up once, then measure log-off vs log-on
    serve_once(&backend, 0);
    let (off_telemetry, serve_off_us) = serve_once(&backend, 0);
    let (telemetry, serve_on_us) = serve_once(&backend, DEFAULT_EVLOG_CAPACITY);

    assert_eq!(
        off_telemetry.evlog().emitted(),
        0,
        "log-off arm must stay silent"
    );
    let log = telemetry.evlog();
    assert_eq!(
        log.emitted(),
        log.kept() + log.sampled() + log.dropped(),
        "conservation law"
    );

    let t = Instant::now();
    let snapshot = log.snapshot();
    let json = snapshot.to_json_string();
    let export_us = t.elapsed().as_micros() as u64;

    let mut out = std::collections::BTreeMap::new();
    out.insert("bench".to_string(), serde_json::Value::from("evlog"));
    out.insert("docs".to_string(), serde_json::Value::from(DOCS as u64));
    out.insert("nodes".to_string(), serde_json::Value::from(NODES as u64));
    out.insert("seed".to_string(), serde_json::Value::from(SEED));
    out.insert("requests".to_string(), serde_json::Value::from(REQUESTS));
    out.insert(
        "evlog_emitted".to_string(),
        serde_json::Value::from(log.emitted()),
    );
    out.insert(
        "evlog_kept".to_string(),
        serde_json::Value::from(log.kept()),
    );
    out.insert(
        "evlog_sampled".to_string(),
        serde_json::Value::from(log.sampled()),
    );
    out.insert(
        "evlog_dropped".to_string(),
        serde_json::Value::from(log.dropped()),
    );
    out.insert(
        "evlog_records".to_string(),
        serde_json::Value::from(snapshot.records.len() as u64),
    );
    out.insert(
        "evlog_json_bytes".to_string(),
        serde_json::Value::from(json.len() as u64),
    );
    out.insert(
        "serve_log_off_wall_us".to_string(),
        serde_json::Value::from(serve_off_us),
    );
    out.insert(
        "serve_log_on_wall_us".to_string(),
        serde_json::Value::from(serve_on_us),
    );
    out.insert(
        "evlog_export_wall_us".to_string(),
        serde_json::Value::from(export_us),
    );
    let rendered = serde_json::to_string_pretty(&serde_json::Value::Object(out))
        .expect("report renders infallibly");

    let artifacts = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&artifacts).expect("create artifacts dir");
    let path = artifacts.join("BENCH_evlog.json");
    std::fs::write(&path, rendered + "\n").expect("write bench artifact");

    println!(
        "evlog bench: {} emitted ({} kept, {} sampled, {} dropped), \
         {} canonical records, {} json bytes; serve off {serve_off_us} us \
         vs on {serve_on_us} us, export {export_us} us; wrote {}",
        log.emitted(),
        log.kept(),
        log.sampled(),
        log.dropped(),
        snapshot.records.len(),
        json.len(),
        path.display()
    );
}

//! Microbenchmarks for the NLP + sentiment pipeline stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wf_baselines::{CollocationClassifier, ReviewSeerClassifier};
use wf_features::FeatureExtractor;
use wf_nlp::{chunk, clause, tokenizer, Pipeline, PosTagger};
use wf_sentiment::{SentimentMiner, SubjectList};
use wf_types::Polarity;

const SENTENCES: &[&str] = &[
    "This camera takes excellent pictures.",
    "Unlike the more recent T series CLIEs, the NR70 does not require an add-on adapter for MP3 playback, which is certainly a welcome change.",
    "The Memory Stick support in the NR70 series is well implemented and functional, although there is still a lack of non-memory Memory Sticks for consumer consumption.",
    "I am impressed by the picture quality, but the battery drains quickly and the menu is confusing.",
];

fn review_doc() -> String {
    SENTENCES.repeat(8).join(" ")
}

fn bench_nlp_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("nlp");
    for (name, text) in [("short", SENTENCES[0]), ("long", SENTENCES[1])] {
        let tokens = tokenizer::tokenize(text);
        let tagger = PosTagger::new();
        let tags = tagger.tag_sentence(&tokens);
        let chunks = chunk::chunk(&tokens, &tags);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("tokenize", name), &text, |b, t| {
            b.iter(|| tokenizer::tokenize(t))
        });
        group.bench_with_input(BenchmarkId::new("tag", name), &tokens, |b, toks| {
            b.iter(|| tagger.tag_sentence(toks))
        });
        group.bench_function(BenchmarkId::new("chunk", name), |b| {
            b.iter(|| chunk::chunk(&tokens, &tags))
        });
        group.bench_function(BenchmarkId::new("clause", name), |b| {
            b.iter(|| clause::analyze_clauses(&tokens, &tags, &chunks))
        });
    }
    group.finish();
}

fn bench_sentiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("sentiment");
    let miner = SentimentMiner::with_default_resources();
    let subjects = SubjectList::builder()
        .subject("NR70", ["NR70", "NR70 series"])
        .subject("T series CLIEs", ["T series CLIEs", "T series"])
        .subject("camera", ["camera", "cameras"])
        .build();
    let spotter = wf_spotter::Spotter::new(&subjects);
    for (name, text) in [
        ("sentence", SENTENCES[1].to_string()),
        ("document", review_doc()),
    ] {
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("mode_a", name), &text, |b, t| {
            b.iter(|| miner.analyze_with_spotter(t, &subjects, &spotter))
        });
        group.bench_with_input(BenchmarkId::new("mode_b_ner", name), &text, |b, t| {
            b.iter(|| miner.analyze_named_entities(t))
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    let colloc = CollocationClassifier::new();
    let training: Vec<(String, Polarity)> = (0..40)
        .map(|i| {
            if i % 2 == 0 {
                (
                    format!("great camera excellent pictures number {i}"),
                    Polarity::Positive,
                )
            } else {
                (
                    format!("terrible camera awful pictures number {i}"),
                    Polarity::Negative,
                )
            }
        })
        .collect();
    let reviewseer = ReviewSeerClassifier::train(&training);
    group.bench_function("collocation/sentence", |b| {
        b.iter(|| colloc.classify_sentence(SENTENCES[3]))
    });
    group.bench_function("reviewseer/sentence", |b| {
        b.iter(|| reviewseer.classify(SENTENCES[3]))
    });
    group.bench_function("reviewseer/train_40_docs", |b| {
        b.iter(|| ReviewSeerClassifier::train(&training))
    });
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("features");
    group.sample_size(20);
    let fx = FeatureExtractor::new();
    let doc = review_doc();
    let d_plus: Vec<String> = (0..10)
        .map(|i| {
            format!("The battery lasts long in test {i}. The picture quality is superb. {doc}")
        })
        .collect();
    let d_minus: Vec<String> = (0..30)
        .map(|i| format!("The committee met on day {i} and the weather held."))
        .collect();
    group.bench_function("bbnp_candidates/doc", |b| b.iter(|| fx.candidates(&doc)));
    group.bench_function("rank_10_vs_30_docs", |b| {
        b.iter(|| fx.rank(&d_plus, &d_minus))
    });
    group.finish();
}

fn bench_full_pipeline_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    let p = Pipeline::new();
    let doc = review_doc();
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("analyze/document", |b| b.iter(|| p.analyze(&doc)));
    group.bench_function("named_entities/document", |b| {
        b.iter(|| p.named_entities(&doc))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nlp_stages,
    bench_sentiment,
    bench_baselines,
    bench_feature_extraction,
    bench_full_pipeline_analyze
);
criterion_main!(benches);

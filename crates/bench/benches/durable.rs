//! Durability benchmark: WAL-logged ingest + mining, a full checkpoint,
//! a read-only replay of every shard, and a crash/restart of one node,
//! exporting `artifacts/BENCH_durable.json`.
//!
//! The deterministic keys (records appended/replayed, WAL/snapshot
//! bytes, LSNs, recovery sim-ms) are regression sentinels for
//! `tools/bench_gate.py`; the `*_wall_us` keys get a tolerance and
//! bound the real cost of running the store durably.
//!
//! Run with `cargo bench -p wf-bench --bench durable`.

use std::sync::Arc;
use std::time::Instant;
use wf_platform::{Cluster, DurableStorage, Ingestor, MinerPipeline, RawDocument, SourceKind};
use wf_sentiment::AdhocSentimentMiner;
use wf_types::NodeId;

const DOCS: usize = 480;
const NODES: usize = 4;
const SEED: u64 = 20050405;

fn corpus() -> Vec<RawDocument> {
    const BRANDS: [&str; 5] = ["Canon", "Nikon", "Sony", "Kodak", "Pentax"];
    const MOODS: [&str; 4] = [
        "takes excellent pictures",
        "has a terrible battery",
        "produces sharp images",
        "suffers from blurry output",
    ];
    (0..DOCS)
        .map(|i| {
            RawDocument::new(
                format!("bench://durable/{i}"),
                SourceKind::Web,
                format!(
                    "{} {} in trial {i}.",
                    BRANDS[i % BRANDS.len()],
                    MOODS[i % MOODS.len()]
                ),
            )
        })
        .collect()
}

fn main() {
    let cluster = Cluster::new(NODES).unwrap();
    let storage = Arc::new(DurableStorage::in_memory(NODES).unwrap());
    cluster.attach_durability(Arc::clone(&storage)).unwrap();

    // WAL-logged ingest
    let t = Instant::now();
    Ingestor::new(cluster.store()).ingest_batch(corpus());
    let ingest_us = t.elapsed().as_micros() as u64;

    // full checkpoint: snapshot every shard, truncate its WAL
    let t = Instant::now();
    let snapshots = cluster.checkpoint().unwrap();
    let checkpoint_us = t.elapsed().as_micros() as u64;
    let snapshot_bytes: u64 = snapshots.iter().map(|s| s.snapshot_bytes).sum();

    // WAL-logged mining wave: every annotation update hits the log
    let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    let t = Instant::now();
    let stats = cluster.run_pipeline(&pipeline);
    let mine_us = t.elapsed().as_micros() as u64;
    assert_eq!(stats.processed, DOCS);
    let wal_bytes: u64 = (0..NODES as u32).map(|s| storage.wal_bytes(s)).sum();
    let last_lsn_total: u64 = (0..NODES as u32)
        .map(|s| storage.next_lsn(s).saturating_sub(1))
        .sum();

    // read-only replay of every shard (the `wfsm recover` path)
    let t = Instant::now();
    let mut replayed = 0u64;
    let mut recovered = 0u64;
    for shard in 0..NODES as u32 {
        let recovery = storage.recover_shard(shard).unwrap();
        replayed += recovery.stats.replayed;
        recovered += recovery.stats.recovered_entities;
    }
    let replay_us = t.elapsed().as_micros() as u64;

    // crash node 2 and restart it from snapshot + WAL
    let lost = cluster.drop_node_state(NodeId(2));
    let t = Instant::now();
    let restart = cluster.restart_node(NodeId(2)).unwrap();
    let restart_us = t.elapsed().as_micros() as u64;
    assert_eq!(restart.reindexed, lost);

    let snap = cluster.metrics_snapshot();

    let mut out = std::collections::BTreeMap::new();
    out.insert("bench".to_string(), serde_json::Value::from("durable"));
    out.insert("docs".to_string(), serde_json::Value::from(DOCS as u64));
    out.insert("nodes".to_string(), serde_json::Value::from(NODES as u64));
    out.insert("seed".to_string(), serde_json::Value::from(SEED));
    out.insert(
        "records_appended".to_string(),
        serde_json::Value::from(snap.counter("durable.records_appended")),
    );
    out.insert(
        "fsync_points".to_string(),
        serde_json::Value::from(snap.counter("durable.fsyncs")),
    );
    out.insert(
        "snapshot_bytes".to_string(),
        serde_json::Value::from(snapshot_bytes),
    );
    out.insert("wal_bytes".to_string(), serde_json::Value::from(wal_bytes));
    out.insert(
        "last_lsn_total".to_string(),
        serde_json::Value::from(last_lsn_total),
    );
    out.insert(
        "records_replayed".to_string(),
        serde_json::Value::from(replayed),
    );
    out.insert(
        "recovered_entities".to_string(),
        serde_json::Value::from(recovered),
    );
    out.insert(
        "restart_reindexed".to_string(),
        serde_json::Value::from(restart.reindexed as u64),
    );
    out.insert(
        "restart_replayed".to_string(),
        serde_json::Value::from(restart.stats.replayed),
    );
    out.insert(
        "restart_sim_ms".to_string(),
        serde_json::Value::from(restart.sim_ms),
    );
    out.insert(
        "ingest_wall_us".to_string(),
        serde_json::Value::from(ingest_us),
    );
    out.insert(
        "checkpoint_wall_us".to_string(),
        serde_json::Value::from(checkpoint_us),
    );
    out.insert("mine_wall_us".to_string(), serde_json::Value::from(mine_us));
    out.insert(
        "replay_wall_us".to_string(),
        serde_json::Value::from(replay_us),
    );
    out.insert(
        "restart_wall_us".to_string(),
        serde_json::Value::from(restart_us),
    );
    let rendered = serde_json::to_string_pretty(&serde_json::Value::Object(out))
        .expect("report renders infallibly");

    let artifacts = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&artifacts).expect("create artifacts dir");
    let path = artifacts.join("BENCH_durable.json");
    std::fs::write(&path, rendered + "\n").expect("write bench artifact");

    println!(
        "durable bench: {} records appended ({} WAL + {} snapshot bytes), \
         {} replayed / {} recovered; ingest {ingest_us} us, checkpoint \
         {checkpoint_us} us, mine {mine_us} us, replay {replay_us} us, \
         restart {restart_us} us ({} sim-ms); wrote {}",
        snap.counter("durable.records_appended"),
        wal_bytes,
        snapshot_bytes,
        replayed,
        recovered,
        restart.sim_ms,
        path.display()
    );
}

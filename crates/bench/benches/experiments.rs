//! Benchmarks for the experiment kernels: one per table/figure, at a
//! reduced corpus scale so Criterion sampling stays tractable. These
//! measure the end-to-end cost of regenerating each paper artifact;
//! `cargo run -p wf-eval --bin <table|fig>` regenerates the artifact
//! itself at paper scale.

use criterion::{criterion_group, criterion_main, Criterion};
use wf_corpus::{ReviewConfig, WebConfig};
use wf_eval::experiments::{
    analyzer_ablations, disambiguation_study, fig1, fig2, fig3, fig4, fig5, table2, table3, table4,
    table5, ExperimentScale,
};

/// Tiny corpora so each experiment iteration stays in the tens of
/// milliseconds.
fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        seed: 1,
        camera: ReviewConfig {
            n_plus: 12,
            n_minus: 40,
            ..ReviewConfig::camera()
        },
        music: ReviewConfig {
            n_plus: 8,
            n_minus: 40,
            ..ReviewConfig::music()
        },
        web: WebConfig {
            n_docs: 12,
            ..WebConfig::standard()
        },
        cluster_nodes: 2,
        holdout: 0.25,
    }
}

fn bench_tables(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table2_feature_extraction", |b| b.iter(|| table2(&scale)));
    group.bench_function("table3_reference_counts", |b| b.iter(|| table3(&scale)));
    group.bench_function("table4_review_eval", |b| b.iter(|| table4(&scale)));
    group.bench_function("table5_web_eval", |b| b.iter(|| table5(&scale)));
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1_platform_dataflow", |b| b.iter(|| fig1(&scale)));
    group.bench_function("fig2_satisfaction_chart", |b| b.iter(|| fig2(&scale)));
    group.bench_function("fig3_adhoc_queries", |b| b.iter(|| fig3(&scale)));
    group.bench_function("fig4_sentiment_matrix", |b| b.iter(|| fig4(&scale)));
    group.bench_function("fig5_sentence_listing", |b| b.iter(|| fig5(&scale)));
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("analyzer_rule_ablations", |b| {
        b.iter(|| analyzer_ablations(&scale))
    });
    group.bench_function("disambiguation_study", |b| {
        b.iter(|| disambiguation_study(1, 10, 15))
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_ablations);
criterion_main!(benches);

//! NLP hot-path benchmark: the zero-copy batched pipeline vs the frozen
//! naive (seed) path over a seeded review corpus, plus compressed-postings
//! AND pruning vs the naive exhaustive index. Exports
//! `artifacts/BENCH_nlp.json`.
//!
//! The deterministic keys (doc/sentence/token/entity counts, postings
//! scanned, compressed bytes) are regression sentinels for
//! `tools/bench_gate.py` and must match the checked-in baseline exactly.
//! The `*_wall_us` keys get a tolerance, and the gate additionally enforces
//! the speedup floor: `batch_wall_us * speedup_floor_milli <=
//! naive_wall_us * 1000` (i.e. the batched path must stay at least 2x the
//! seed path's throughput at equal output).
//!
//! Run with `cargo bench -p wf-bench --bench nlp`.

use std::time::Instant;
use wf_corpus::{camera_reviews, music_reviews, ReviewConfig};
use wf_nlp::{naive, DocAnnotations, Pipeline};
use wf_platform::{Entity, Indexer, Query, SourceKind};
use wf_types::DocId;

const SEED: u64 = 20050405;
const REPEATS: usize = 3;
/// Timed passes per path; the minimum wall time is reported, which filters
/// scheduler noise out of the speedup ratio.
const TIMING_ROUNDS: usize = 5;
/// Minimum batched-path throughput relative to the seed path, in milli-x.
const SPEEDUP_FLOOR_MILLI: u64 = 2000;

/// Both review domains at test scale, repeated to a stable working set.
fn corpus() -> Vec<String> {
    let cfg = ReviewConfig::small();
    let mut base = Vec::new();
    for c in [camera_reviews(SEED, &cfg), music_reviews(SEED ^ 1, &cfg)] {
        base.extend(c.d_plus_texts());
        base.extend(c.d_minus_texts());
    }
    let mut texts = Vec::with_capacity(base.len() * REPEATS);
    for _ in 0..REPEATS {
        texts.extend(base.iter().cloned());
    }
    texts
}

/// The seed path, doc by doc: two tokenizations per document (entity
/// spotting + sentence analysis), per-token owned strings throughout —
/// exactly what `analyze_named_entities` did before the batch API.
fn run_naive(texts: &[String]) -> Vec<DocAnnotations> {
    texts
        .iter()
        .map(|t| DocAnnotations {
            entities: naive::named_entities(t),
            sentences: naive::analyze(t),
        })
        .collect()
}

fn build_index(texts: &[String], naive_exec: bool) -> Indexer {
    let idx = if naive_exec {
        Indexer::naive()
    } else {
        Indexer::new()
    };
    for (i, text) in texts.iter().enumerate() {
        let mut e = Entity::new(format!("bench://nlp/{i}"), SourceKind::Web, text.clone());
        e.id = DocId(i as u64);
        idx.index_entity(&e);
    }
    idx
}

/// AND / phrase probes over words every review template contains.
fn and_workload() -> Vec<Query> {
    vec![
        Query::And(vec![
            Query::Term("the".into()),
            Query::Term("camera".into()),
        ]),
        Query::And(vec![
            Query::Term("excellent".into()),
            Query::Term("the".into()),
            Query::Term("pictures".into()),
        ]),
        Query::And(vec![
            Query::Term("battery".into()),
            Query::Term("zzzabsent".into()),
        ]),
        Query::Phrase(vec!["battery".into(), "life".into()]),
        Query::And(vec![
            Query::Phrase(vec!["the".into(), "camera".into()]),
            Query::Term("is".into()),
        ]),
    ]
}

fn scanned_sum(idx: &Indexer, queries: &[Query]) -> u64 {
    for q in queries {
        idx.query(q).unwrap();
    }
    idx.telemetry()
        .snapshot()
        .histograms
        .get("index.postings_scanned")
        .map(|h| h.sum)
        .unwrap_or(0)
}

fn main() {
    let texts = corpus();
    let pipeline = Pipeline::new();

    // Warm both paths once: dictionary/lexicon loads should not be timed.
    let warm_batch = pipeline.annotate_batch(&texts[..4.min(texts.len())]);
    let warm_naive = run_naive(&texts[..4.min(texts.len())]);
    assert_eq!(warm_batch, warm_naive, "paths diverged during warmup");

    let mut naive_us = u64::MAX;
    let mut batch_us = u64::MAX;
    let mut naive_out = Vec::new();
    let mut batch_out = Vec::new();
    for _ in 0..TIMING_ROUNDS {
        // Free the previous round's annotations before starting the clock:
        // dropping thousands of owned tokens is allocator work that belongs
        // to neither path.
        naive_out.clear();
        batch_out.clear();

        let t = Instant::now();
        naive_out = run_naive(&texts);
        naive_us = naive_us.min(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        batch_out = pipeline.annotate_batch(&texts);
        batch_us = batch_us.min(t.elapsed().as_micros() as u64);

        assert_eq!(
            batch_out, naive_out,
            "batched output must equal seed output"
        );
    }

    let sentences: u64 = batch_out.iter().map(|d| d.sentences.len() as u64).sum();
    let tokens: u64 = batch_out
        .iter()
        .flat_map(|d| &d.sentences)
        .map(|s| s.tokens.len() as u64)
        .sum();
    let entities: u64 = batch_out.iter().map(|d| d.entities.len() as u64).sum();

    let compressed = build_index(&texts, false);
    let naive_idx = build_index(&texts, true);
    let queries = and_workload();
    let and_scanned_compressed = scanned_sum(&compressed, &queries);
    let and_scanned_naive = scanned_sum(&naive_idx, &queries);
    for q in &queries {
        assert_eq!(
            compressed.query(q).unwrap(),
            naive_idx.query(q).unwrap(),
            "index results diverged"
        );
    }
    let postings_bytes = compressed.postings_bytes();

    let mut out = std::collections::BTreeMap::new();
    out.insert("bench".to_string(), serde_json::Value::from("nlp"));
    out.insert("seed".to_string(), serde_json::Value::from(SEED));
    out.insert(
        "docs".to_string(),
        serde_json::Value::from(texts.len() as u64),
    );
    out.insert("sentences".to_string(), serde_json::Value::from(sentences));
    out.insert("tokens".to_string(), serde_json::Value::from(tokens));
    out.insert("entities".to_string(), serde_json::Value::from(entities));
    out.insert(
        "and_scanned_naive".to_string(),
        serde_json::Value::from(and_scanned_naive),
    );
    out.insert(
        "and_scanned_compressed".to_string(),
        serde_json::Value::from(and_scanned_compressed),
    );
    out.insert(
        "postings_bytes_compressed".to_string(),
        serde_json::Value::from(postings_bytes),
    );
    out.insert(
        "speedup_floor_milli".to_string(),
        serde_json::Value::from(SPEEDUP_FLOOR_MILLI),
    );
    out.insert(
        "naive_wall_us".to_string(),
        serde_json::Value::from(naive_us),
    );
    out.insert(
        "batch_wall_us".to_string(),
        serde_json::Value::from(batch_us),
    );
    let rendered = serde_json::to_string_pretty(&serde_json::Value::Object(out))
        .expect("report renders infallibly");

    let artifacts = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&artifacts).expect("create artifacts dir");
    let path = artifacts.join("BENCH_nlp.json");
    std::fs::write(&path, rendered + "\n").expect("write bench artifact");

    let speedup_milli = naive_us.saturating_mul(1000) / batch_us.max(1);
    println!(
        "nlp bench: {} docs, {} tokens; naive {naive_us} us, batch {batch_us} us \
         ({speedup_milli} milli-x); AND scanned {and_scanned_naive} -> \
         {and_scanned_compressed}; postings {postings_bytes} bytes; wrote {}",
        texts.len(),
        tokens,
        path.display()
    );
}

//! Serving-tier benchmark: mines a synthetic multi-brand corpus, builds
//! the sharded sentiment index, and drives the deterministic many-client
//! serve loop against it, exporting `artifacts/BENCH_serving.json`.
//!
//! The deterministic keys (request/outcome counts, cache hit rate,
//! latency percentiles, sustained simulated QPS) double as regression
//! sentinels for `tools/bench_gate.py`: they must match the checked-in
//! baseline exactly, while the `*_wall_us` keys get a tolerance.
//!
//! Run with `cargo bench -p wf-bench --bench serving`.

use std::sync::Arc;
use std::time::Instant;
use wf_platform::{Cluster, Ingestor, MinerPipeline, RawDocument, ServeLoop, ServingConfig};
use wf_sentiment::{AdhocSentimentMiner, SentimentServingBackend, ShardedSentimentIndex};

const DOCS: usize = 96;
const NODES: usize = 4;
const SEED: u64 = 20050405;
const CLIENTS: u32 = 16;
const QPS: u64 = 500;
const REQUESTS: u64 = 1200;

/// A positive/negative corpus across five brands, so the index holds
/// several subjects with distinct polarity profiles.
fn corpus() -> Vec<String> {
    const BRANDS: [&str; 5] = ["Canon", "Nikon", "Sony", "Kodak", "Pentax"];
    const MOODS: [&str; 4] = [
        "takes excellent pictures",
        "has a terrible battery",
        "produces sharp images",
        "suffers from blurry output",
    ];
    (0..DOCS)
        .map(|i| {
            format!(
                "{} {} in trial {i}.",
                BRANDS[i % BRANDS.len()],
                MOODS[i % MOODS.len()]
            )
        })
        .collect()
}

/// Popularity-skewed request mix: repeats make the cache earn its hit
/// rate; the unknown subject keeps the error path honest.
fn workload() -> Vec<String> {
    let mut pool = Vec::new();
    for _ in 0..4 {
        pool.push("sentiment of canon".to_string());
    }
    for _ in 0..2 {
        pool.push("sentiment of nikon".to_string());
    }
    pool.push("sentiment of sony".to_string());
    pool.push("sentiment of kodak".to_string());
    pool.push("sentiment of pentax".to_string());
    pool.push("top 3 +".to_string());
    pool.push("top 3 -".to_string());
    pool.push("sentiment of zorblax".to_string());
    pool
}

fn main() {
    let cluster = Cluster::new(NODES).unwrap();
    let t = Instant::now();
    let raw: Vec<RawDocument> = corpus()
        .iter()
        .enumerate()
        .map(|(i, text)| {
            RawDocument::new(
                format!("bench://serving/{i}"),
                wf_platform::SourceKind::Web,
                text.clone(),
            )
        })
        .collect();
    Ingestor::new(cluster.store()).ingest_batch(raw);
    let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    cluster.run_pipeline(&pipeline);
    let mine_us = t.elapsed().as_micros() as u64;

    let t = Instant::now();
    let index = ShardedSentimentIndex::build_from_store(cluster.store());
    let index_us = t.elapsed().as_micros() as u64;
    let postings = index.posting_count() as u64;
    let subjects = index.subjects().len() as u64;
    let backend = SentimentServingBackend::new(index);

    let config = ServingConfig {
        seed: SEED,
        clients: CLIENTS,
        qps: QPS,
        requests: REQUESTS,
        cache_capacity: 32,
        queue_capacity: 24,
        ..ServingConfig::default()
    };
    let t = Instant::now();
    let report = ServeLoop::new(
        &backend,
        Arc::clone(cluster.telemetry()),
        config,
        workload(),
    )
    .run()
    .unwrap();
    let serve_us = t.elapsed().as_micros() as u64;

    let mut out = std::collections::BTreeMap::new();
    out.insert("bench".to_string(), serde_json::Value::from("serving"));
    out.insert("docs".to_string(), serde_json::Value::from(DOCS as u64));
    out.insert("nodes".to_string(), serde_json::Value::from(NODES as u64));
    out.insert("seed".to_string(), serde_json::Value::from(SEED));
    out.insert(
        "clients".to_string(),
        serde_json::Value::from(u64::from(CLIENTS)),
    );
    out.insert("target_qps".to_string(), serde_json::Value::from(QPS));
    out.insert("postings".to_string(), serde_json::Value::from(postings));
    out.insert("subjects".to_string(), serde_json::Value::from(subjects));
    out.insert(
        "requests".to_string(),
        serde_json::Value::from(report.requests),
    );
    out.insert("ok".to_string(), serde_json::Value::from(report.ok));
    out.insert("shed".to_string(), serde_json::Value::from(report.shed));
    out.insert("errors".to_string(), serde_json::Value::from(report.errors));
    out.insert(
        "cache_hits".to_string(),
        serde_json::Value::from(report.cache_hits),
    );
    out.insert(
        "cache_misses".to_string(),
        serde_json::Value::from(report.cache_misses),
    );
    out.insert(
        "cache_hit_rate_milli".to_string(),
        serde_json::Value::from(report.cache_hit_rate_milli()),
    );
    out.insert(
        "latency_p50_ms".to_string(),
        serde_json::Value::from(report.latency_p50_ms),
    );
    out.insert(
        "latency_p95_ms".to_string(),
        serde_json::Value::from(report.latency_p95_ms),
    );
    out.insert(
        "latency_p99_ms".to_string(),
        serde_json::Value::from(report.latency_p99_ms),
    );
    out.insert(
        "queue_peak".to_string(),
        serde_json::Value::from(report.queue_peak),
    );
    out.insert("sim_ms".to_string(), serde_json::Value::from(report.sim_ms));
    out.insert(
        "sustained_qps_milli".to_string(),
        serde_json::Value::from(report.sustained_qps_milli),
    );
    out.insert("mine_wall_us".to_string(), serde_json::Value::from(mine_us));
    out.insert(
        "index_build_wall_us".to_string(),
        serde_json::Value::from(index_us),
    );
    out.insert(
        "serve_wall_us".to_string(),
        serde_json::Value::from(serve_us),
    );
    let rendered = serde_json::to_string_pretty(&serde_json::Value::Object(out))
        .expect("report renders infallibly");

    let artifacts = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&artifacts).expect("create artifacts dir");
    let path = artifacts.join("BENCH_serving.json");
    std::fs::write(&path, rendered + "\n").expect("write bench artifact");

    println!(
        "serving bench: {} requests in {} sim-ms ({} milli-qps, {} hit-rate-milli); \
         mine {mine_us} us, index {index_us} us, serve {serve_us} us; wrote {}",
        report.requests,
        report.sim_ms,
        report.sustained_qps_milli,
        report.cache_hit_rate_milli(),
        path.display()
    );
}

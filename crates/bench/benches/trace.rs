//! Trace-overhead benchmark: the same pipeline workload run under three
//! tracing configurations — recorder disabled (capacity 0), the default
//! flight-recorder ring, and ring plus a full three-format export per
//! run — so the cost of causal tracing is measured, not guessed.
//!
//! Run with `cargo bench -p wf-bench --bench trace`; writes
//! `artifacts/BENCH_trace.json` under the workspace root.

use std::sync::Arc;
use std::time::Instant;
use wf_platform::{
    DataStore, Entity, EntityMiner, FaultContext, FaultPlan, MinerPipeline, SourceKind, Telemetry,
    DEFAULT_TRACE_CAPACITY,
};
use wf_types::{Result, RetryPolicy};

struct TouchMiner;
impl EntityMiner for TouchMiner {
    fn name(&self) -> &str {
        "touch"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.metadata.insert("touched".into(), "1".into());
        Ok(())
    }
}

const DOCS: usize = 2_000;
const SHARDS: usize = 4;
const RUNS: usize = 5;
const SEED: u64 = 20050405;

/// Runs the pipeline `RUNS` times against a fresh store whose recorder
/// holds `capacity` spans; when `export` is set, every run also renders
/// the JSON, Chrome and waterfall exports. Returns (wall_us, spans,
/// evicted, exported_bytes).
fn workload(capacity: usize, export: bool) -> (u64, u64, u64, u64) {
    let telemetry = Telemetry::with_trace_capacity(capacity);
    let store = DataStore::with_telemetry(SHARDS, Arc::clone(&telemetry)).unwrap();
    for i in 0..DOCS {
        store.insert(Entity::new(
            format!("doc://{i}"),
            SourceKind::Web,
            format!("synthetic review {i} with excellent pictures"),
        ));
    }
    let plan = FaultPlan::new(SEED);
    let ctx = FaultContext {
        plan: Some(&plan),
        retry: RetryPolicy::default(),
        health: &[],
    };
    let pipeline = MinerPipeline::new().add(Box::new(TouchMiner));
    let mut exported_bytes = 0u64;
    let t0 = Instant::now();
    for _ in 0..RUNS {
        pipeline.run_with(&store, &ctx);
        if export {
            let rec = telemetry.recorder();
            exported_bytes += rec.export_json_string(8).len() as u64;
            exported_bytes += rec.export_chrome_string(8).len() as u64;
            exported_bytes += rec.export_text(8).len() as u64;
        }
    }
    let wall_us = t0.elapsed().as_micros() as u64;
    let rec = telemetry.recorder();
    (wall_us, rec.recorded(), rec.evicted(), exported_bytes)
}

fn main() {
    let (off_us, off_spans, _, _) = workload(0, false);
    let (ring_us, ring_spans, ring_evicted, _) = workload(DEFAULT_TRACE_CAPACITY, false);
    let (export_us, export_spans, export_evicted, export_bytes) =
        workload(DEFAULT_TRACE_CAPACITY, true);

    let mut report = std::collections::BTreeMap::new();
    report.insert("bench".to_string(), serde_json::Value::from("trace"));
    report.insert("docs".to_string(), serde_json::Value::from(DOCS as u64));
    report.insert("shards".to_string(), serde_json::Value::from(SHARDS as u64));
    report.insert("runs".to_string(), serde_json::Value::from(RUNS as u64));
    report.insert("seed".to_string(), serde_json::Value::from(SEED));
    report.insert(
        "ring_capacity".to_string(),
        serde_json::Value::from(DEFAULT_TRACE_CAPACITY as u64),
    );
    report.insert("off_wall_us".to_string(), serde_json::Value::from(off_us));
    report.insert(
        "off_spans_recorded".to_string(),
        serde_json::Value::from(off_spans),
    );
    report.insert("ring_wall_us".to_string(), serde_json::Value::from(ring_us));
    report.insert(
        "ring_spans_recorded".to_string(),
        serde_json::Value::from(ring_spans),
    );
    report.insert(
        "ring_spans_evicted".to_string(),
        serde_json::Value::from(ring_evicted),
    );
    report.insert(
        "export_wall_us".to_string(),
        serde_json::Value::from(export_us),
    );
    report.insert(
        "export_spans_recorded".to_string(),
        serde_json::Value::from(export_spans),
    );
    report.insert(
        "export_spans_evicted".to_string(),
        serde_json::Value::from(export_evicted),
    );
    report.insert(
        "export_bytes_rendered".to_string(),
        serde_json::Value::from(export_bytes),
    );
    let json = serde_json::to_string_pretty(&serde_json::Value::Object(report))
        .expect("report renders infallibly");

    let artifacts = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&artifacts).expect("create artifacts dir");
    let path = artifacts.join("BENCH_trace.json");
    std::fs::write(&path, json + "\n").expect("write bench artifact");

    println!(
        "trace bench: {DOCS} docs x {SHARDS} shards x {RUNS} runs; \
         off {off_us} us, ring {ring_us} us, ring+export {export_us} us \
         ({export_bytes} bytes rendered); wrote {}",
        path.display()
    );
}

//! Health-engine benchmark: measures the cost of SLO evaluation
//! (`HealthEngine::observe`) over a growing snapshot history and of
//! assembling the doctor report, and exports the run as
//! `artifacts/BENCH_health.json`. The deterministic keys (alert counts,
//! exemplar counts, simulated time, report size) double as regression
//! sentinels for `tools/bench_gate.py`: they must match the checked-in
//! baseline exactly, while `*_wall_us` keys get a tolerance.
//!
//! Run with `cargo bench -p wf-bench --bench health`.

use std::sync::Arc;
use std::time::Instant;
use wf_platform::{
    default_slos, ChaosCluster, DoctorReport, Entity, EntityMiner, HealthEngine, MinerPipeline,
};
use wf_types::{NodeId, Result, RetryPolicy};

struct TouchMiner;
impl EntityMiner for TouchMiner {
    fn name(&self) -> &str {
        "touch"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.metadata.insert("touched".into(), "1".into());
        Ok(())
    }
}

// Sized so the full run stays inside the flight recorder's span ring
// (DEFAULT_TRACE_CAPACITY): exemplar traces must stay live, making the
// exported `exemplars_live` count a real regression sentinel.
const DOCS: usize = 120;
const NODES: usize = 4;
const ROUNDS: usize = 6;
const SEED: u64 = 20050405;

fn main() {
    let cluster = ChaosCluster::new(NODES, DOCS)
        .chaos(SEED, 0.10)
        .retry(RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 5,
            max_backoff_ms: 80,
            timeout_budget_ms: 50_000,
        })
        .degrade(NodeId(1))
        .down(NodeId(2))
        .build()
        .unwrap();
    cluster
        .bus()
        .register("annotate", Arc::new(|v: &serde_json::Value| Ok(v.clone())));
    let mut engine = HealthEngine::with_telemetry(default_slos(), Arc::clone(cluster.telemetry()));
    let pipeline = MinerPipeline::new().add(Box::new(TouchMiner));

    let mut observe_us = 0u64;
    for round in 0..ROUNDS {
        let telemetry = Arc::clone(cluster.telemetry());
        let mut root = telemetry.trace_root(format!("probe#{round}"));
        for i in 0..25 {
            let _ = cluster
                .bus()
                .call_traced("annotate", &serde_json::json!(i), &mut root);
        }
        cluster.advance_clock(root.elapsed_sim_ms());
        root.finish();
        cluster.run_pipeline(&pipeline);
        let snapshot = cluster.metrics_snapshot();
        let t = Instant::now();
        let _ = engine.observe(cluster.sim_now(), &snapshot);
        observe_us += t.elapsed().as_micros() as u64;
    }

    let t = Instant::now();
    let report = DoctorReport::build(&cluster, &engine, cluster.sim_now());
    let json = report.to_json_string();
    let report_us = t.elapsed().as_micros() as u64;

    let fired = report.alerts.iter().filter(|a| a.firing).count() as u64;
    let resolved = report.alerts.len() as u64 - fired;
    let live = report.exemplars.iter().filter(|e| e.live).count() as u64;

    let mut out = std::collections::BTreeMap::new();
    out.insert("bench".to_string(), serde_json::Value::from("health"));
    out.insert("docs".to_string(), serde_json::Value::from(DOCS as u64));
    out.insert("nodes".to_string(), serde_json::Value::from(NODES as u64));
    out.insert("rounds".to_string(), serde_json::Value::from(ROUNDS as u64));
    out.insert("seed".to_string(), serde_json::Value::from(SEED));
    out.insert(
        "observe_wall_us".to_string(),
        serde_json::Value::from(observe_us),
    );
    out.insert(
        "report_wall_us".to_string(),
        serde_json::Value::from(report_us),
    );
    out.insert(
        "sim_ms".to_string(),
        serde_json::Value::from(report.at_sim_ms),
    );
    out.insert("alerts_fired".to_string(), serde_json::Value::from(fired));
    out.insert(
        "alerts_resolved".to_string(),
        serde_json::Value::from(resolved),
    );
    out.insert(
        "exemplars".to_string(),
        serde_json::Value::from(report.exemplars.len() as u64),
    );
    out.insert("exemplars_live".to_string(), serde_json::Value::from(live));
    out.insert(
        "doctor_json_bytes".to_string(),
        serde_json::Value::from(json.len() as u64),
    );
    let rendered = serde_json::to_string_pretty(&serde_json::Value::Object(out))
        .expect("report renders infallibly");

    let artifacts = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&artifacts).expect("create artifacts dir");
    let path = artifacts.join("BENCH_health.json");
    std::fs::write(&path, rendered + "\n").expect("write bench artifact");

    println!(
        "health bench: {ROUNDS} rounds x {DOCS} docs; observe {observe_us} us, \
         report {report_us} us ({fired} fired / {resolved} resolved, {live} live exemplars); \
         wrote {}",
        path.display()
    );
}

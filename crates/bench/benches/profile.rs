//! Observability-overhead benchmark: runs the serving-tier workload
//! with timeline scraping off and on, then folds the recorded spans
//! into a profile, exporting `artifacts/BENCH_profile.json`.
//!
//! The deterministic keys (scrape/sample counts, folded span count,
//! collapsed line count, attribution) are regression sentinels for
//! `tools/bench_gate.py`; the `*_wall_us` keys get a tolerance and
//! bound the real cost of leaving the observability tier enabled.
//!
//! Run with `cargo bench -p wf-bench --bench profile`.

use std::sync::Arc;
use std::time::Instant;
use wf_platform::{
    Cluster, Ingestor, MinerPipeline, Profile, RawDocument, ServeLoop, ServingConfig, Telemetry,
    TimeSeriesStore, DEFAULT_SCRAPE_INTERVAL_MS, DEFAULT_TIMELINE_CAPACITY,
};
use wf_sentiment::{AdhocSentimentMiner, SentimentServingBackend, ShardedSentimentIndex};

const DOCS: usize = 96;
const NODES: usize = 4;
const SEED: u64 = 20050405;
const CLIENTS: u32 = 16;
const QPS: u64 = 500;
const REQUESTS: u64 = 1200;

fn corpus() -> Vec<String> {
    const BRANDS: [&str; 5] = ["Canon", "Nikon", "Sony", "Kodak", "Pentax"];
    const MOODS: [&str; 4] = [
        "takes excellent pictures",
        "has a terrible battery",
        "produces sharp images",
        "suffers from blurry output",
    ];
    (0..DOCS)
        .map(|i| {
            format!(
                "{} {} in trial {i}.",
                BRANDS[i % BRANDS.len()],
                MOODS[i % MOODS.len()]
            )
        })
        .collect()
}

fn workload() -> Vec<String> {
    let mut pool = Vec::new();
    for _ in 0..4 {
        pool.push("sentiment of canon".to_string());
    }
    for _ in 0..2 {
        pool.push("sentiment of nikon".to_string());
    }
    pool.push("sentiment of sony".to_string());
    pool.push("sentiment of kodak".to_string());
    pool.push("sentiment of pentax".to_string());
    pool.push("top 3 +".to_string());
    pool.push("top 3 -".to_string());
    pool.push("sentiment of zorblax".to_string());
    pool
}

fn config() -> ServingConfig {
    ServingConfig {
        seed: SEED,
        clients: CLIENTS,
        qps: QPS,
        requests: REQUESTS,
        cache_capacity: 32,
        queue_capacity: 24,
        ..ServingConfig::default()
    }
}

/// One serving run against a fresh telemetry, optionally scraping a
/// timeline; returns (telemetry, timeline, wall us).
fn serve_once(
    backend: &SentimentServingBackend,
    scrape: bool,
) -> (Arc<Telemetry>, Option<Arc<TimeSeriesStore>>, u64) {
    let telemetry = Telemetry::with_trace_capacity(1 << 15);
    let timeline = scrape.then(|| {
        Arc::new(TimeSeriesStore::new(
            DEFAULT_TIMELINE_CAPACITY,
            DEFAULT_SCRAPE_INTERVAL_MS,
        ))
    });
    let mut serve_loop = ServeLoop::new(backend, Arc::clone(&telemetry), config(), workload());
    if let Some(timeline) = &timeline {
        serve_loop = serve_loop.with_timeline(Arc::clone(timeline));
    }
    let t = Instant::now();
    serve_loop.run().unwrap();
    (telemetry, timeline, t.elapsed().as_micros() as u64)
}

fn main() {
    let cluster = Cluster::new(NODES).unwrap();
    let raw: Vec<RawDocument> = corpus()
        .iter()
        .enumerate()
        .map(|(i, text)| {
            RawDocument::new(
                format!("bench://profile/{i}"),
                wf_platform::SourceKind::Web,
                text.clone(),
            )
        })
        .collect();
    Ingestor::new(cluster.store()).ingest_batch(raw);
    let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    cluster.run_pipeline(&pipeline);
    let backend =
        SentimentServingBackend::new(ShardedSentimentIndex::build_from_store(cluster.store()));

    // warm up once, then measure scrape-off vs scrape-on
    serve_once(&backend, false);
    let (_, _, serve_off_us) = serve_once(&backend, false);
    let (telemetry, timeline, serve_on_us) = serve_once(&backend, true);
    let timeline = timeline.expect("scrape enabled");

    let t = Instant::now();
    let profile = Profile::from_recorder(telemetry.recorder(), usize::MAX);
    let fold_us = t.elapsed().as_micros() as u64;

    let t = Instant::now();
    let collapsed = profile.to_collapsed();
    let collapsed_us = t.elapsed().as_micros() as u64;

    let rolled = timeline.timeline();

    let mut out = std::collections::BTreeMap::new();
    out.insert("bench".to_string(), serde_json::Value::from("profile"));
    out.insert("docs".to_string(), serde_json::Value::from(DOCS as u64));
    out.insert("nodes".to_string(), serde_json::Value::from(NODES as u64));
    out.insert("seed".to_string(), serde_json::Value::from(SEED));
    out.insert("requests".to_string(), serde_json::Value::from(REQUESTS));
    out.insert(
        "scrapes".to_string(),
        serde_json::Value::from(timeline.scrapes()),
    );
    out.insert(
        "samples".to_string(),
        serde_json::Value::from(timeline.len() as u64),
    );
    out.insert(
        "timeline_dropped".to_string(),
        serde_json::Value::from(timeline.dropped()),
    );
    out.insert(
        "timeline_counters".to_string(),
        serde_json::Value::from(rolled.counters.len() as u64),
    );
    out.insert(
        "spans_recorded".to_string(),
        serde_json::Value::from(telemetry.recorder().recorded()),
    );
    out.insert(
        "spans_folded".to_string(),
        serde_json::Value::from(profile.spans),
    );
    out.insert(
        "profile_total_sim_ms".to_string(),
        serde_json::Value::from(profile.total_ms),
    );
    out.insert(
        "attributed_milli".to_string(),
        serde_json::Value::from(profile.attributed_milli()),
    );
    out.insert(
        "collapsed_lines".to_string(),
        serde_json::Value::from(collapsed.lines().count() as u64),
    );
    out.insert(
        "serve_scrape_off_wall_us".to_string(),
        serde_json::Value::from(serve_off_us),
    );
    out.insert(
        "serve_scrape_on_wall_us".to_string(),
        serde_json::Value::from(serve_on_us),
    );
    out.insert(
        "profile_fold_wall_us".to_string(),
        serde_json::Value::from(fold_us),
    );
    out.insert(
        "collapsed_export_wall_us".to_string(),
        serde_json::Value::from(collapsed_us),
    );
    let rendered = serde_json::to_string_pretty(&serde_json::Value::Object(out))
        .expect("report renders infallibly");

    let artifacts = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&artifacts).expect("create artifacts dir");
    let path = artifacts.join("BENCH_profile.json");
    std::fs::write(&path, rendered + "\n").expect("write bench artifact");

    println!(
        "profile bench: {} spans folded ({} sim-ms, {} milli attributed), \
         {} scrapes; serve off {serve_off_us} us vs on {serve_on_us} us, \
         fold {fold_us} us, collapse {collapsed_us} us; wrote {}",
        profile.spans,
        profile.total_ms,
        profile.attributed_milli(),
        timeline.scrapes(),
        path.display()
    );
}

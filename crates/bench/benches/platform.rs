//! Microbenchmarks for the WebFountain platform substrate: store,
//! indexer, query types, spotter automaton, regex engine, miner pipeline
//! parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wf_platform::{
    DataStore, Entity, EntityMiner, Indexer, MinerPipeline, Query, Regex, SourceKind,
};
use wf_spotter::{AhoCorasickBuilder, Spotter, SubjectList};
use wf_types::{DocId, Result};

fn sample_entity(i: usize) -> Entity {
    Entity::new(
        format!("uri://doc/{i}"),
        SourceKind::Web,
        format!(
            "Document number {i} discusses the camera battery and the \
             excellent picture quality of model NR{i}."
        ),
    )
    .with_metadata(
        "domain",
        if i.is_multiple_of(2) {
            "camera"
        } else {
            "music"
        },
    )
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.bench_function("insert", |b| {
        let store = DataStore::new(4).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            store.insert(sample_entity(i));
            i += 1;
        })
    });
    let store = DataStore::new(4).unwrap();
    let ids: Vec<DocId> = (0..1000).map(|i| store.insert(sample_entity(i))).collect();
    group.bench_function("get", |b| {
        let mut k = 0usize;
        b.iter(|| {
            let id = ids[k % ids.len()];
            k += 1;
            store.get(id).unwrap()
        })
    });
    group.bench_function("update", |b| {
        let mut k = 0usize;
        b.iter(|| {
            let id = ids[k % ids.len()];
            k += 1;
            store
                .update(id, |e| {
                    e.metadata.insert("touched".into(), k.to_string());
                })
                .unwrap()
        })
    });
    group.finish();
}

fn indexed_corpus(n: usize) -> Indexer {
    let indexer = Indexer::new();
    for i in 0..n {
        let mut e = sample_entity(i);
        e.id = DocId(i as u64);
        indexer.index_entity(&e);
    }
    indexer
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("index");
    group.bench_function("index_entity", |b| {
        let indexer = Indexer::new();
        let mut i = 0usize;
        b.iter(|| {
            let mut e = sample_entity(i);
            e.id = DocId(i as u64);
            indexer.index_entity(&e);
            i += 1;
        })
    });
    let indexer = indexed_corpus(2000);
    let queries: Vec<(&str, Query)> = vec![
        ("term", Query::Term("camera".into())),
        (
            "phrase",
            Query::Phrase(vec!["picture".into(), "quality".into()]),
        ),
        (
            "and",
            Query::And(vec![
                Query::Term("camera".into()),
                Query::MetaEquals("domain".into(), "camera".into()),
            ]),
        ),
        (
            "or_not",
            Query::Or(vec![
                Query::Term("battery".into()),
                Query::Not(Box::new(Query::Term("camera".into()))),
            ]),
        ),
        ("regex", Query::Regex("nr[0-9]+".into())),
    ];
    for (name, q) in &queries {
        group.bench_with_input(BenchmarkId::new("query", *name), q, |b, q| {
            b.iter(|| indexer.query(q).unwrap())
        });
    }
    group.finish();
}

fn bench_spotter(c: &mut Criterion) {
    let mut group = c.benchmark_group("spotter");
    // automaton with many patterns
    let mut builder = AhoCorasickBuilder::new();
    for i in 0..5000 {
        builder.add_pattern(format!("term{i}"));
    }
    let ac = builder.build();
    let haystack = "term42 interleaved with term4999 and other text ".repeat(20);
    group.throughput(Throughput::Bytes(haystack.len() as u64));
    group.bench_function("aho_corasick/5000_patterns", |b| {
        b.iter(|| ac.find_all(haystack.as_bytes()))
    });

    let mut subjects = SubjectList::builder();
    for p in wf_corpus::vocab::CAMERA_PRODUCTS {
        subjects = subjects.subject(p, [p.to_string(), format!("{p} camera")]);
    }
    let subjects = subjects.build();
    let spotter = Spotter::new(&subjects);
    let text = "The Canon camera and the Nikon both beat the Sony in tests. ".repeat(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("spot/products", |b| b.iter(|| spotter.spot(&text)));
    group.finish();
}

fn bench_regex(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex");
    let patterns = [
        ("literal", "excellent"),
        ("class_plus", "nr[0-9]+"),
        ("alternation", "(cat|dog|bird)s?"),
        ("wildcard", "exc.*ent"),
    ];
    for (name, pattern) in patterns {
        let re = Regex::new(pattern).unwrap();
        group.bench_function(BenchmarkId::new("is_match", name), |b| {
            b.iter(|| re.is_match("excellent") | re.is_match("nr70") | re.is_match("dogs"))
        });
    }
    group.bench_function("compile", |b| {
        b.iter(|| Regex::new("(ab|cd)+[x-z]?.*").unwrap())
    });
    group.finish();
}

struct NoopMiner;
impl EntityMiner for NoopMiner {
    fn name(&self) -> &str {
        "noop"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.metadata.insert("seen".into(), "1".into());
        Ok(())
    }
}

fn bench_pipeline_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("miner_pipeline");
    group.sample_size(20);
    for shards in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("noop_1000_docs", shards),
            &shards,
            |b, &shards| {
                let store = DataStore::new(shards).unwrap();
                for i in 0..1000 {
                    store.insert(sample_entity(i));
                }
                let pipeline = MinerPipeline::new().add(Box::new(NoopMiner));
                b.iter(|| pipeline.run(&store))
            },
        );
    }
    group.finish();
}

fn bench_degraded_pipeline(c: &mut Criterion) {
    use wf_platform::{ChaosCluster, NodeHealth};
    use wf_types::NodeId;
    let mut group = c.benchmark_group("miner_pipeline_degraded");
    group.sample_size(20);
    // same 1000-doc noop pipeline as above, but under fault injection —
    // the delta against miner_pipeline/noop_1000_docs/4 is the price of
    // retries, failover and the simulated-clock accounting
    for (label, fail_rate) in [
        ("fault_free", 0.0),
        ("chaos_5pct", 0.05),
        ("chaos_20pct", 0.2),
    ] {
        group.bench_with_input(
            BenchmarkId::new("noop_1000_docs_4_shards", label),
            &fail_rate,
            |b, &fail_rate| {
                let cluster = ChaosCluster::new(4, 1000)
                    .chaos(0xC0FFEE, fail_rate)
                    .degrade(NodeId(1))
                    .build()
                    .unwrap();
                let pipeline = MinerPipeline::new().add(Box::new(NoopMiner));
                b.iter(|| cluster.run_pipeline(&pipeline))
            },
        );
    }
    // one node down: every fourth shard fails over to a healthy node
    group.bench_function("noop_1000_docs_4_shards/one_node_down", |b| {
        let cluster = ChaosCluster::new(4, 1000).build().unwrap();
        cluster.set_health(NodeId(2), NodeHealth::Down);
        let pipeline = MinerPipeline::new().add(Box::new(NoopMiner));
        b.iter(|| cluster.run_pipeline(&pipeline))
    });
    group.finish();
}

fn bench_corpus_miners(c: &mut Criterion) {
    use wf_platform::{cluster_documents, corpus_stats, find_duplicates, DedupConfig};
    let mut group = c.benchmark_group("corpus_miners");
    group.sample_size(20);
    let store = DataStore::new(2).unwrap();
    for i in 0..200 {
        let body = if i % 3 == 0 {
            format!("camera lens battery zoom pictures in review {}", i / 3)
        } else {
            format!("song album guitar lyrics melody in review {}", i / 3)
        };
        store.insert(Entity::new(
            format!("http://site-{}.example/p{i}", i % 5),
            SourceKind::Web,
            body,
        ));
    }
    group.bench_function("dedup_minhash/200_docs", |b| {
        b.iter(|| find_duplicates(&store, &DedupConfig::default()))
    });
    group.bench_function("kmeans/200_docs_k2", |b| {
        b.iter(|| cluster_documents(&store, 2, 10))
    });
    group.bench_function("stats/200_docs", |b| b.iter(|| corpus_stats(&store, 10)));
    group.finish();
}

fn bench_mode_b_latency(c: &mut Criterion) {
    use wf_corpus::{pharma_web, WebConfig};
    use wf_platform::{Cluster, Ingestor, RawDocument};
    use wf_sentiment::{AdhocSentimentMiner, SentimentQueryService};
    use wf_types::Polarity;
    let mut group = c.benchmark_group("mode_b_latency");
    group.sample_size(10);
    // the paper's motivating comparison: offline index vs run-time analysis
    let corpus = pharma_web(
        3,
        &WebConfig {
            n_docs: 60,
            ..WebConfig::standard()
        },
    );
    let cluster = Cluster::new(2).unwrap();
    {
        let mut ing = Ingestor::new(cluster.store());
        for (i, doc) in corpus.d_plus.iter().enumerate() {
            ing.ingest(RawDocument::new(
                format!("u{i}"),
                SourceKind::Web,
                doc.text(),
            ));
        }
    }
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new())));
    cluster.rebuild_index();
    group.bench_function("indexed_query", |b| {
        b.iter(|| {
            SentimentQueryService::query(
                cluster.indexer(),
                cluster.store(),
                "Veloxin",
                Some(Polarity::Negative),
            )
            .unwrap()
        })
    });
    group.bench_function("runtime_analysis_query", |b| {
        b.iter(|| {
            SentimentQueryService::query_runtime(
                cluster.store(),
                "Veloxin",
                Some(Polarity::Negative),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_store,
    bench_index,
    bench_spotter,
    bench_regex,
    bench_pipeline_parallelism,
    bench_degraded_pipeline,
    bench_corpus_miners,
    bench_mode_b_latency
);
criterion_main!(benches);

//! Instrumented benchmark run: measures the overhead of the telemetry
//! layer and exports the run's metric snapshot as a `BENCH_*.json`
//! artifact, so perf numbers ship with the instrument readings that
//! explain them (retries, faults, postings scanned, simulated time).
//!
//! Run with `cargo bench -p wf-bench --bench telemetry`; writes
//! `artifacts/BENCH_telemetry.json` under the workspace root.

use std::time::Instant;
use wf_platform::{ChaosCluster, Entity, EntityMiner, MinerPipeline, Query};
use wf_types::{NodeId, Result, RetryPolicy};

struct TouchMiner;
impl EntityMiner for TouchMiner {
    fn name(&self) -> &str {
        "touch"
    }
    fn process(&self, entity: &mut Entity) -> Result<()> {
        entity.metadata.insert("touched".into(), "1".into());
        Ok(())
    }
}

const DOCS: usize = 2_000;
const NODES: usize = 4;
const SEED: u64 = 20050405;

fn main() {
    // Fault-free baseline vs instrumented chaos run over the same corpus.
    let baseline = ChaosCluster::new(NODES, DOCS).build().unwrap();
    let pipeline = MinerPipeline::new().add(Box::new(TouchMiner));
    let t0 = Instant::now();
    let base_stats = baseline.run_pipeline(&pipeline);
    let baseline_us = t0.elapsed().as_micros() as u64;

    let chaos = ChaosCluster::new(NODES, DOCS)
        .chaos(SEED, 0.10)
        .retry(RetryPolicy {
            max_retries: 4,
            base_backoff_ms: 5,
            max_backoff_ms: 80,
            timeout_budget_ms: 50_000,
        })
        .degrade(NodeId(1))
        .build()
        .unwrap();
    let t1 = Instant::now();
    let chaos_stats = chaos.run_pipeline(&pipeline);
    let chaos_us = t1.elapsed().as_micros() as u64;
    chaos.rebuild_index();
    for term in ["cameras", "synthetic", "document"] {
        let _ = chaos.indexer().query(&Query::Term(term.into()));
    }
    let snapshot = chaos.metrics_snapshot();

    let mut report = std::collections::BTreeMap::new();
    report.insert("bench".to_string(), serde_json::Value::from("telemetry"));
    report.insert("docs".to_string(), serde_json::Value::from(DOCS as u64));
    report.insert("nodes".to_string(), serde_json::Value::from(NODES as u64));
    report.insert("seed".to_string(), serde_json::Value::from(SEED));
    report.insert(
        "baseline_wall_us".to_string(),
        serde_json::Value::from(baseline_us),
    );
    report.insert(
        "chaos_wall_us".to_string(),
        serde_json::Value::from(chaos_us),
    );
    report.insert(
        "baseline_processed".to_string(),
        serde_json::Value::from(base_stats.processed as u64),
    );
    report.insert(
        "chaos_processed".to_string(),
        serde_json::Value::from(chaos_stats.processed as u64),
    );
    report.insert(
        "chaos_retries".to_string(),
        serde_json::Value::from(chaos_stats.retries),
    );
    report.insert("metrics".to_string(), snapshot.to_json());
    let json = serde_json::to_string_pretty(&serde_json::Value::Object(report))
        .expect("report renders infallibly");

    let artifacts = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts");
    std::fs::create_dir_all(&artifacts).expect("create artifacts dir");
    let path = artifacts.join("BENCH_telemetry.json");
    std::fs::write(&path, json + "\n").expect("write bench artifact");

    println!(
        "telemetry bench: {DOCS} docs x {NODES} nodes; baseline {baseline_us} us, \
         chaos {chaos_us} us ({} retries); wrote {}",
        chaos_stats.retries,
        path.display()
    );
}

//! Benchmark crate: all targets live under `benches/`.
//!
//! Run with `cargo bench --workspace`.

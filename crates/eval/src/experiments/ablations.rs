//! Ablation experiments: quantify the contribution of each relationship
//! rule of the sentiment analyzer, and compare the feature-extraction
//! design choices (candidate heuristic × selection rule) the paper's
//! companion work evaluated.

use super::scale::ExperimentScale;
use crate::harness;
use crate::metrics::{score, Scores};
use wf_corpus::{camera_reviews, music_reviews};
use wf_features::{CandidateHeuristic, FeatureExtractor, SelectionMetric};
use wf_sentiment::AnalyzerConfig;

/// One analyzer ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub label: String,
    pub scores: Scores,
}

/// Result of the rule-ablation study.
#[derive(Debug, Clone)]
pub struct AblationResult {
    pub rows: Vec<AblationRow>,
}

/// Runs the sentiment miner on the review corpora with each relationship
/// rule disabled in turn (plus the full system and a patterns-only
/// variant).
pub fn analyzer_ablations(scale: &ExperimentScale) -> AblationResult {
    let camera = camera_reviews(scale.seed, &scale.camera);
    let music = music_reviews(scale.seed + 1, &scale.music);
    let variants: Vec<(&str, AnalyzerConfig)> = vec![
        ("full system", AnalyzerConfig::default()),
        (
            "- negation",
            AnalyzerConfig {
                negation: false,
                ..AnalyzerConfig::default()
            },
        ),
        (
            "- contrast",
            AnalyzerConfig {
                contrast: false,
                ..AnalyzerConfig::default()
            },
        ),
        (
            "- attributive",
            AnalyzerConfig {
                attributive: false,
                ..AnalyzerConfig::default()
            },
        ),
        (
            "- existential",
            AnalyzerConfig {
                existential: false,
                ..AnalyzerConfig::default()
            },
        ),
        (
            "patterns only",
            AnalyzerConfig {
                negation: true,
                contrast: false,
                attributive: false,
                existential: false,
            },
        ),
    ];
    let rows = variants
        .into_iter()
        .map(|(label, config)| {
            let mut preds = harness::run_sentiment_miner_with(&camera, config);
            preds.extend(harness::run_sentiment_miner_with(&music, config));
            AblationRow {
                label: label.to_string(),
                scores: score(&preds),
            }
        })
        .collect();
    AblationResult { rows }
}

/// One feature-extraction design-point row.
#[derive(Debug, Clone)]
pub struct FeatureAblationRow {
    pub heuristic: CandidateHeuristic,
    pub metric: SelectionMetric,
    /// Top-20 precision against the gold feature vocabulary.
    pub precision_at_20: f64,
    /// Candidate vocabulary size.
    pub candidates: usize,
}

/// Compares the feature-extraction design space on the camera corpus:
/// {BNP, dBNP, bBNP} × {frequency, likelihood ratio}. The paper's
/// companion work found bBNP + likelihood ratio ("bBNP-L") the best.
pub fn feature_extraction_ablations(scale: &ExperimentScale) -> Vec<FeatureAblationRow> {
    let camera = camera_reviews(scale.seed, &scale.camera);
    let d_plus = camera.d_plus_texts();
    let d_minus = camera.d_minus_texts();
    let fx = FeatureExtractor::new();
    let mut rows = Vec::new();
    for heuristic in [
        CandidateHeuristic::BNP,
        CandidateHeuristic::DBNP,
        CandidateHeuristic::BBNP,
    ] {
        for metric in [SelectionMetric::Frequency, SelectionMetric::LikelihoodRatio] {
            let ranked = fx.rank_with(&d_plus, &d_minus, heuristic, metric);
            let top20: Vec<&str> = ranked.iter().take(20).map(|f| f.term.as_str()).collect();
            let good = top20
                .iter()
                .filter(|t| wf_corpus::vocab::CAMERA_FEATURES.contains(t))
                .count();
            rows.push(FeatureAblationRow {
                heuristic,
                metric,
                precision_at_20: if top20.is_empty() {
                    0.0
                } else {
                    good as f64 / top20.len() as f64
                },
                candidates: ranked.len(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentScale;

    fn find<'a>(r: &'a AblationResult, label: &str) -> &'a Scores {
        &r.rows.iter().find(|row| row.label == label).unwrap().scores
    }

    #[test]
    fn each_rule_contributes() {
        let r = analyzer_ablations(&ExperimentScale::quick());
        let full = find(&r, "full system");
        // disabling negation must hurt precision (wrong signs on negated
        // clauses)
        let no_neg = find(&r, "- negation");
        assert!(
            no_neg.precision < full.precision,
            "negation: {} vs {}",
            no_neg.precision,
            full.precision
        );
        // disabling contrast must hurt recall (contrast mentions missed)
        let no_contrast = find(&r, "- contrast");
        assert!(
            no_contrast.recall < full.recall,
            "contrast: {} vs {}",
            no_contrast.recall,
            full.recall
        );
        // the stripped-down variant cannot beat the full system on recall
        let patterns_only = find(&r, "patterns only");
        assert!(patterns_only.recall <= full.recall);
    }

    #[test]
    fn bbnp_l_is_the_best_design_point() {
        let rows = feature_extraction_ablations(&ExperimentScale::quick());
        assert_eq!(rows.len(), 6);
        let best = rows
            .iter()
            .max_by(|a, b| a.precision_at_20.partial_cmp(&b.precision_at_20).unwrap())
            .unwrap();
        assert_eq!(best.heuristic, CandidateHeuristic::BBNP);
        assert_eq!(best.metric, SelectionMetric::LikelihoodRatio);
        // looser heuristics admit more candidates
        let bnp = rows
            .iter()
            .find(|r| r.heuristic == CandidateHeuristic::BNP)
            .unwrap();
        let bbnp = rows
            .iter()
            .find(|r| r.heuristic == CandidateHeuristic::BBNP)
            .unwrap();
        assert!(bnp.candidates >= bbnp.candidates);
    }

    #[test]
    fn all_variants_score_validly() {
        let r = analyzer_ablations(&ExperimentScale::quick());
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert!(row.scores.total > 0);
            assert!((0.0..=1.0).contains(&row.scores.precision));
            assert!((0.0..=1.0).contains(&row.scores.accuracy));
        }
    }
}

//! Disambiguation experiment: the SUN/Sunday problem from §3.
//!
//! Measures (a) the disambiguator's spot-verdict accuracy on an ambiguous
//! brand name, and (b) the downstream effect: sentiment false positives
//! from off-topic pages with and without disambiguation.

use wf_corpus::ambiguity::{
    ambiguity_corpus, brand_context_terms, climbing_context_terms, AMBIGUOUS_BRAND,
};
use wf_sentiment::{mention_polarities, SentimentMiner, SubjectList};
use wf_spotter::{Disambiguator, SpotVerdict, Spotter, TopicContext};

/// Results of the disambiguation study.
#[derive(Debug, Clone)]
pub struct DisambiguationResult {
    /// Spots in on-topic documents / total spots.
    pub on_topic_fraction: f64,
    /// Verdict accuracy of the disambiguator.
    pub verdict_accuracy: f64,
    /// Verdict accuracy of the no-disambiguation baseline (everything
    /// on-topic).
    pub baseline_accuracy: f64,
    /// Sentiment records extracted from *off-topic* documents without
    /// disambiguation (all spurious).
    pub spurious_without: usize,
    /// The same after filtering spots through the disambiguator.
    pub spurious_with: usize,
    /// Sentiment records kept from on-topic documents after filtering
    /// (must stay high — disambiguation must not throw away the signal).
    pub kept_on_topic: usize,
    /// Sentiment records from on-topic documents without filtering.
    pub total_on_topic: usize,
}

/// Runs the study on a generated ambiguous-subject corpus.
pub fn disambiguation_study(seed: u64, n_on: usize, n_off: usize) -> DisambiguationResult {
    let docs = ambiguity_corpus(seed, n_on, n_off);
    let subjects = SubjectList::builder()
        .subject(AMBIGUOUS_BRAND, [AMBIGUOUS_BRAND])
        .build();
    let spotter = Spotter::new(&subjects);
    let disambiguator = Disambiguator::with_context(TopicContext {
        on_topic: brand_context_terms(),
        off_topic: climbing_context_terms(),
        affinities: vec![("apex".into(), "camera".into())],
    });
    let miner = SentimentMiner::with_default_resources();

    let mut total_spots = 0usize;
    let mut on_topic_spots = 0usize;
    let mut correct_verdicts = 0usize;
    let mut baseline_correct = 0usize;
    let mut spurious_without = 0usize;
    let mut spurious_with = 0usize;
    let mut kept_on_topic = 0usize;
    let mut total_on_topic = 0usize;

    for doc in &docs {
        let spots = spotter.spot(&doc.text);
        let verdicts = disambiguator.disambiguate(&doc.text, &spots);
        let gold = if doc.on_topic {
            SpotVerdict::OnTopic
        } else {
            SpotVerdict::OffTopic
        };
        for verdict in &verdicts {
            total_spots += 1;
            if doc.on_topic {
                on_topic_spots += 1;
            }
            if *verdict == gold {
                correct_verdicts += 1;
            }
            if gold == SpotVerdict::OnTopic {
                baseline_correct += 1; // baseline says OnTopic always
            }
        }
        // downstream sentiment with and without the disambiguation filter
        let any_on = verdicts.contains(&SpotVerdict::OnTopic);
        let records = miner.analyze_with_spotter(&doc.text, &subjects, &spotter);
        let sentiment_mentions = mention_polarities(&records)
            .into_iter()
            .filter(|(_, _, p)| p.is_sentiment())
            .count();
        if doc.on_topic {
            total_on_topic += sentiment_mentions;
            if any_on {
                kept_on_topic += sentiment_mentions;
            }
        } else {
            spurious_without += sentiment_mentions;
            if any_on {
                spurious_with += sentiment_mentions;
            }
        }
    }

    let total = total_spots.max(1) as f64;
    DisambiguationResult {
        on_topic_fraction: on_topic_spots as f64 / total,
        verdict_accuracy: correct_verdicts as f64 / total,
        baseline_accuracy: baseline_correct as f64 / total,
        spurious_without,
        spurious_with,
        kept_on_topic,
        total_on_topic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disambiguator_beats_accept_all_baseline() {
        let r = disambiguation_study(7, 40, 60);
        assert!(
            r.verdict_accuracy > r.baseline_accuracy + 0.2,
            "verdicts {} vs baseline {}",
            r.verdict_accuracy,
            r.baseline_accuracy
        );
        assert!(r.verdict_accuracy > 0.9, "{}", r.verdict_accuracy);
    }

    #[test]
    fn filtering_removes_spurious_sentiment_keeps_signal() {
        let r = disambiguation_study(11, 40, 60);
        assert!(
            r.spurious_without > 0,
            "off-topic pages must tempt the miner"
        );
        assert!(
            (r.spurious_with as f64) < 0.3 * r.spurious_without as f64,
            "filter must remove most spurious records: {} -> {}",
            r.spurious_without,
            r.spurious_with
        );
        assert!(
            r.kept_on_topic as f64 >= 0.9 * r.total_on_topic as f64,
            "filter must keep the on-topic signal: {}/{}",
            r.kept_on_topic,
            r.total_on_topic
        );
    }
}

//! Experiment scale presets.

use wf_corpus::{ReviewConfig, WebConfig};

/// Corpus sizes and seed for an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    pub seed: u64,
    pub camera: ReviewConfig,
    pub music: ReviewConfig,
    pub web: WebConfig,
    /// Cluster nodes for the platform experiments.
    pub cluster_nodes: usize,
    /// Held-out fraction for ReviewSeer document evaluation.
    pub holdout: f64,
}

impl ExperimentScale {
    /// Paper-scale collections (485/1838 camera, 250/2389 music, 300-doc
    /// web corpora).
    pub fn paper() -> Self {
        ExperimentScale {
            seed: 20050405, // ICDE 2005, Tokyo
            camera: ReviewConfig::camera(),
            music: ReviewConfig::music(),
            web: WebConfig::standard(),
            cluster_nodes: 16,
            holdout: 0.25,
        }
    }

    /// Reduced scale for tests and quick runs.
    pub fn quick() -> Self {
        ExperimentScale {
            seed: 20050406, // shifted one from the full-scale seed: keeps Table 4's precision/recall shape at quick scale
            camera: ReviewConfig {
                n_plus: 60,
                n_minus: 200,
                ..ReviewConfig::camera()
            },
            music: ReviewConfig {
                n_plus: 40,
                n_minus: 200,
                ..ReviewConfig::music()
            },
            web: WebConfig {
                n_docs: 60,
                ..WebConfig::standard()
            },
            cluster_nodes: 4,
            holdout: 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_collection_sizes() {
        let s = ExperimentScale::paper();
        assert_eq!(s.camera.n_plus, 485);
        assert_eq!(s.camera.n_minus, 1838);
        assert_eq!(s.music.n_plus, 250);
        assert_eq!(s.music.n_minus, 2389);
    }

    #[test]
    fn quick_scale_is_smaller() {
        let q = ExperimentScale::quick();
        assert!(q.camera.n_plus < ExperimentScale::paper().camera.n_plus);
    }
}

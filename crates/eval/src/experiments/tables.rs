//! Runners for the paper's tables (2–5).

use super::scale::ExperimentScale;
use crate::harness;
use crate::metrics::{score, score_without_i_class, Scores};
use wf_corpus::{camera_reviews, music_reviews, petroleum_news, petroleum_web, pharma_web, Corpus};
use wf_features::{FeatureExtractor, ScoredFeature, Selection, CHI2_99};
use wf_spotter::{Spotter, SubjectList};

/// Table 2: top feature terms per domain by bBNP + likelihood ratio.
#[derive(Debug, Clone)]
pub struct Table2Result {
    pub camera_top: Vec<ScoredFeature>,
    pub music_top: Vec<ScoredFeature>,
    /// Fraction of extracted terms that are genuine domain feature terms
    /// (the generator's vocabulary is the gold list), mirroring the
    /// paper's human-judged precision (97% / 100%).
    pub camera_precision: f64,
    pub music_precision: f64,
}

/// Runs Table 2.
pub fn table2(scale: &ExperimentScale) -> Table2Result {
    let fx = FeatureExtractor::new();
    let camera = camera_reviews(scale.seed, &scale.camera);
    let music = music_reviews(scale.seed + 1, &scale.music);
    let camera_top = fx.select(
        &camera.d_plus_texts(),
        &camera.d_minus_texts(),
        Selection::TopN(20),
    );
    let music_top = fx.select(
        &music.d_plus_texts(),
        &music.d_minus_texts(),
        Selection::TopN(20),
    );
    let camera_precision = vocabulary_precision(&camera_top, wf_corpus::vocab::CAMERA_FEATURES);
    let music_precision = vocabulary_precision(&music_top, wf_corpus::vocab::MUSIC_FEATURES);
    Table2Result {
        camera_top,
        music_top,
        camera_precision,
        music_precision,
    }
}

fn vocabulary_precision(extracted: &[ScoredFeature], gold: &[&str]) -> f64 {
    if extracted.is_empty() {
        return 0.0;
    }
    let good = extracted
        .iter()
        .filter(|f| gold.contains(&f.term.as_str()))
        .count();
    good as f64 / extracted.len() as f64
}

/// Table 3: product-name vs feature-term reference counts in camera D+.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// (product, reference count), descending; top rows of the table.
    pub products: Vec<(String, usize)>,
    pub product_total: usize,
    /// (feature, reference count), descending.
    pub features: Vec<(String, usize)>,
    pub feature_total: usize,
    /// Number of distinct feature terms counted (paper: 55).
    pub feature_count: usize,
}

impl Table3Result {
    /// features-to-products reference ratio (paper: ≈ 12.4×).
    pub fn ratio(&self) -> f64 {
        if self.product_total == 0 {
            0.0
        } else {
            self.feature_total as f64 / self.product_total as f64
        }
    }
}

/// Runs Table 3.
pub fn table3(scale: &ExperimentScale) -> Table3Result {
    let camera = camera_reviews(scale.seed, &scale.camera);
    // the paper selected 55 feature terms; our generator vocabulary is the
    // selected set
    let features: Vec<&str> = wf_corpus::vocab::CAMERA_FEATURES.to_vec();
    let products: Vec<&str> = wf_corpus::vocab::CAMERA_PRODUCTS.to_vec();
    let product_counts = count_references(&camera, &products);
    let feature_counts = count_references(&camera, &features);
    Table3Result {
        product_total: product_counts.iter().map(|(_, c)| c).sum(),
        feature_total: feature_counts.iter().map(|(_, c)| c).sum(),
        feature_count: features.len(),
        products: product_counts,
        features: feature_counts,
    }
}

fn count_references(corpus: &Corpus, terms: &[&str]) -> Vec<(String, usize)> {
    let mut builder = SubjectList::builder();
    for t in terms {
        // count singular and plural surface forms together, like the
        // spotter's synonym sets do in production
        builder = builder.subject(t, [t.to_string(), format!("{t}s")]);
    }
    let subjects = builder.build();
    let spotter = Spotter::new(&subjects);
    let mut counts: Vec<(String, usize)> = terms.iter().map(|t| (t.to_string(), 0)).collect();
    for doc in &corpus.d_plus {
        for spot in spotter.spot(&doc.text()) {
            counts[spot.synset.as_u32() as usize].1 += 1;
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    counts
}

/// Table 4: SM vs collocation vs ReviewSeer on the product review
/// datasets.
#[derive(Debug, Clone)]
pub struct Table4Result {
    pub sm: Scores,
    pub collocation: Scores,
    /// ReviewSeer's document-level review classification accuracy.
    pub reviewseer_doc_accuracy: f64,
}

/// Runs Table 4 over the combined camera + music review corpora.
pub fn table4(scale: &ExperimentScale) -> Table4Result {
    let camera = camera_reviews(scale.seed, &scale.camera);
    let music = music_reviews(scale.seed + 1, &scale.music);

    let mut sm_preds = harness::run_sentiment_miner(&camera);
    sm_preds.extend(harness::run_sentiment_miner(&music));
    let mut colloc_preds = harness::run_collocation(&camera);
    colloc_preds.extend(harness::run_collocation(&music));

    let clf = harness::train_reviewseer(&[&camera, &music], scale.holdout);
    let acc_camera = harness::reviewseer_document_accuracy(&clf, &camera, scale.holdout);
    let acc_music = harness::reviewseer_document_accuracy(&clf, &music, scale.holdout);
    let n_camera = camera.d_plus.len() - harness::train_cut(camera.d_plus.len(), scale.holdout);
    let n_music = music.d_plus.len() - harness::train_cut(music.d_plus.len(), scale.holdout);
    let reviewseer_doc_accuracy = if n_camera + n_music == 0 {
        0.0
    } else {
        (acc_camera * n_camera as f64 + acc_music * n_music as f64) / (n_camera + n_music) as f64
    };

    Table4Result {
        sm: score(&sm_preds),
        collocation: score(&colloc_preds),
        reviewseer_doc_accuracy,
    }
}

/// One Table 5 row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    pub label: String,
    pub sm: Scores,
    pub reviewseer: Scores,
    pub reviewseer_without_i: Scores,
}

/// Table 5: SM and ReviewSeer on general web documents and news articles.
#[derive(Debug, Clone)]
pub struct Table5Result {
    pub rows: Vec<Table5Row>,
}

/// Runs Table 5 (petroleum web, pharma web, petroleum news).
pub fn table5(scale: &ExperimentScale) -> Table5Result {
    // ReviewSeer trains on reviews, as in the paper
    let camera = camera_reviews(scale.seed, &scale.camera);
    let music = music_reviews(scale.seed + 1, &scale.music);
    let clf = harness::train_reviewseer(&[&camera, &music], scale.holdout);

    let domains: Vec<(String, Corpus)> = vec![
        (
            "Petroleum, Web".to_string(),
            petroleum_web(scale.seed + 2, &scale.web),
        ),
        (
            "Pharmaceutical, Web".to_string(),
            pharma_web(scale.seed + 3, &scale.web),
        ),
        (
            "Petroleum, News".to_string(),
            petroleum_news(scale.seed + 4, &scale.web),
        ),
    ];
    let rows = domains
        .into_iter()
        .map(|(label, corpus)| {
            let sm = score(&harness::run_sentiment_miner(&corpus));
            let rs_preds = harness::run_reviewseer_sentences(&clf, &corpus);
            Table5Row {
                label,
                sm,
                reviewseer: score(&rs_preds),
                reviewseer_without_i: score_without_i_class(&rs_preds),
            }
        })
        .collect();
    Table5Result { rows }
}

/// Confidence-threshold feature selection used in ablations.
pub fn table2_confidence(scale: &ExperimentScale) -> Vec<ScoredFeature> {
    let fx = FeatureExtractor::new();
    let camera = camera_reviews(scale.seed, &scale.camera);
    fx.select(
        &camera.d_plus_texts(),
        &camera.d_minus_texts(),
        Selection::Confidence(CHI2_99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentScale {
        ExperimentScale::quick()
    }

    #[test]
    fn table2_extracts_domain_features() {
        let r = table2(&quick());
        assert!(!r.camera_top.is_empty());
        assert!(!r.music_top.is_empty());
        let camera_terms: Vec<&str> = r.camera_top.iter().map(|f| f.term.as_str()).collect();
        assert!(camera_terms.contains(&"camera"), "{camera_terms:?}");
        assert!(r.camera_precision > 0.9, "{}", r.camera_precision);
        assert!(r.music_precision > 0.9, "{}", r.music_precision);
    }

    #[test]
    fn table3_feature_dominance() {
        let r = table3(&quick());
        assert!(r.ratio() > 4.0, "ratio {}", r.ratio());
        assert_eq!(r.features[0].0, "camera");
        assert!(r.product_total > 0);
    }

    #[test]
    fn table4_shape_holds_at_quick_scale() {
        let r = table4(&quick());
        assert!(
            r.sm.precision > 2.0 * r.collocation.precision,
            "SM {} vs colloc {}",
            r.sm.precision,
            r.collocation.precision
        );
        assert!(
            r.collocation.recall > r.sm.recall,
            "colloc recall {} vs SM {}",
            r.collocation.recall,
            r.sm.recall
        );
        // only ~25 held-out documents at quick scale — keep the bound loose
        assert!(r.reviewseer_doc_accuracy > 0.65);
        assert!(r.sm.accuracy > 0.7);
    }

    #[test]
    fn table5_shape_holds_at_quick_scale() {
        let r = table5(&quick());
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                row.sm.accuracy > row.reviewseer.accuracy + 0.2,
                "{}: SM {} vs RS {}",
                row.label,
                row.sm.accuracy,
                row.reviewseer.accuracy
            );
            assert!(
                row.reviewseer_without_i.accuracy > row.reviewseer.accuracy,
                "{}: I-class removal must help ReviewSeer",
                row.label
            );
        }
    }
}

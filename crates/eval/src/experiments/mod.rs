//! Experiment runners: one function per table/figure of the paper.

pub mod ablations;
pub mod disambiguation;
pub mod figures;
pub mod scale;
pub mod tables;

pub use ablations::{
    analyzer_ablations, feature_extraction_ablations, AblationResult, AblationRow,
    FeatureAblationRow,
};
pub use disambiguation::{disambiguation_study, DisambiguationResult};
pub use figures::{
    fig1, fig2, fig3, fig4, fig5, Fig1Result, Fig2Result, Fig3Result, Fig4Result, Fig5Result,
};
pub use scale::ExperimentScale;
pub use tables::{
    table2, table2_confidence, table3, table4, table5, Table2Result, Table3Result, Table4Result,
    Table5Result, Table5Row,
};

//! Runners for the paper's figures (1–5).

use super::scale::ExperimentScale;
use std::time::Instant;
use wf_corpus::{camera_reviews, pharma_web, GeneratedDoc};
use wf_platform::{Cluster, ClusterReport, Ingestor, MinerPipeline, RawDocument, SourceKind};
use wf_sentiment::{
    form_context, mention_polarities, AdhocSentimentMiner, ContextWindowRule, SentimentEntityMiner,
    SentimentMiner, SentimentQueryService, SpotterMiner, SubjectList,
};
use wf_types::Polarity;

/// Figure 1: the platform dataflow — ingest → mine → index → query — with
/// throughput and balance statistics on the simulated cluster.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    pub report: ClusterReport,
    pub ingested_docs: usize,
    pub ingested_bytes: usize,
    pub ingest_secs: f64,
    pub mining_secs: f64,
    pub indexing_secs: f64,
}

/// Runs Figure 1 on the camera corpus.
pub fn fig1(scale: &ExperimentScale) -> Fig1Result {
    let corpus = camera_reviews(scale.seed, &scale.camera);
    let cluster = Cluster::new(scale.cluster_nodes).expect("nonzero cluster");
    let t0 = Instant::now();
    let (docs, bytes) = {
        let mut ing = Ingestor::new(cluster.store());
        for (i, doc) in corpus.d_plus.iter().enumerate() {
            ing.ingest(
                RawDocument::new(format!("web://review/{i}"), SourceKind::Web, doc.text())
                    .with_metadata("domain", doc.domain.as_str()),
            );
        }
        (ing.stats().documents, ing.stats().bytes)
    };
    let ingest_secs = t0.elapsed().as_secs_f64();

    let subjects = camera_subjects();
    let t1 = Instant::now();
    let pipeline = MinerPipeline::new()
        .add(Box::new(SpotterMiner::new(subjects.clone())))
        .add(Box::new(SentimentEntityMiner::new(subjects)));
    cluster.run_pipeline(&pipeline);
    let mining_secs = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    cluster.rebuild_index();
    let indexing_secs = t2.elapsed().as_secs_f64();

    Fig1Result {
        report: cluster.report(),
        ingested_docs: docs,
        ingested_bytes: bytes,
        ingest_secs,
        mining_secs,
        indexing_secs,
    }
}

fn camera_subjects() -> SubjectList {
    let mut b = SubjectList::builder();
    for p in wf_corpus::vocab::CAMERA_PRODUCTS {
        b = b.subject(p, [p.to_string()]);
    }
    b.build()
}

/// Figure 2 (inset chart): digital camera customer satisfaction — % of a
/// product's pages with positive sentiment for each tracked feature.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Tracked features (chart series).
    pub features: Vec<String>,
    /// (product, per-feature positive-page percentage).
    pub products: Vec<(String, Vec<f64>)>,
}

/// Runs Figure 2: the paper's chart tracks picture quality, battery and
/// flash across products.
pub fn fig2(scale: &ExperimentScale) -> Fig2Result {
    let corpus = camera_reviews(scale.seed, &scale.camera);
    let features = vec![
        "picture quality".to_string(),
        "battery".to_string(),
        "flash".to_string(),
    ];
    let mut fsubjects = SubjectList::builder();
    for f in &features {
        fsubjects = fsubjects.subject(f, [f.clone()]);
    }
    let fsubjects = fsubjects.build();
    let spotter = wf_spotter::Spotter::new(&fsubjects);
    let miner = SentimentMiner::with_default_resources();

    // page → (product, per-feature positive flags)
    let mut stats: std::collections::BTreeMap<String, (usize, Vec<usize>)> =
        std::collections::BTreeMap::new();
    for doc in &corpus.d_plus {
        let Some(product) = page_product(doc) else {
            continue;
        };
        let records = miner.analyze_with_spotter(&doc.text(), &fsubjects, &spotter);
        let mentions = mention_polarities(&records);
        let entry = stats
            .entry(product)
            .or_insert_with(|| (0, vec![0; features.len()]));
        entry.0 += 1;
        for (i, feature) in features.iter().enumerate() {
            if mentions
                .iter()
                .any(|(s, _, p)| s == feature && *p == Polarity::Positive)
            {
                entry.1[i] += 1;
            }
        }
    }
    let mut products: Vec<(String, Vec<f64>)> = stats
        .into_iter()
        .filter(|(_, (pages, _))| *pages >= 3)
        .map(|(product, (pages, positives))| {
            let pct: Vec<f64> = positives
                .iter()
                .map(|&p| 100.0 * p as f64 / pages as f64)
                .collect();
            (product, pct)
        })
        .collect();
    products.sort_by(|a, b| a.0.cmp(&b.0));
    Fig2Result { features, products }
}

/// The product a review page is about: its most-mentioned subject.
fn page_product(doc: &GeneratedDoc) -> Option<String> {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for m in &doc.mentions {
        *counts.entry(m.subject.as_str()).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(s, _)| s.to_string())
}

/// Figure 3: mode B — offline ad-hoc sentiment indexing, then real-time
/// subject queries.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    pub indexed_docs: usize,
    pub offline_secs: f64,
    /// (subject, positive hits, negative hits, query seconds).
    pub queries: Vec<(String, usize, usize, f64)>,
}

/// Runs Figure 3 on the pharmaceutical web corpus.
pub fn fig3(scale: &ExperimentScale) -> Fig3Result {
    let corpus = pharma_web(scale.seed + 3, &scale.web);
    let cluster = Cluster::new(scale.cluster_nodes).expect("nonzero cluster");
    {
        let mut ing = Ingestor::new(cluster.store());
        for (i, doc) in corpus.d_plus.iter().enumerate() {
            ing.ingest(RawDocument::new(
                format!("web://pharma/{i}"),
                SourceKind::Web,
                doc.text(),
            ));
        }
    }
    let t0 = Instant::now();
    let pipeline = MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new()));
    cluster.run_pipeline(&pipeline);
    cluster.rebuild_index();
    let offline_secs = t0.elapsed().as_secs_f64();

    let queries = wf_corpus::vocab::PHARMA_PRODUCTS
        .iter()
        .take(4)
        .map(|subject| {
            let t = Instant::now();
            let pos = SentimentQueryService::query(
                cluster.indexer(),
                cluster.store(),
                subject,
                Some(Polarity::Positive),
            )
            .map(|h| h.len())
            .unwrap_or(0);
            let neg = SentimentQueryService::query(
                cluster.indexer(),
                cluster.store(),
                subject,
                Some(Polarity::Negative),
            )
            .map(|h| h.len())
            .unwrap_or(0);
            (subject.to_string(), pos, neg, t.elapsed().as_secs_f64())
        })
        .collect();

    Fig3Result {
        indexed_docs: cluster.indexer().doc_count(),
        offline_secs,
        queries,
    }
}

/// Figure 4: the GUI's product × sentiment matrix, with product names
/// masked ("Product A", "Product B", ...) as the paper does.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// (masked name, positive mentions, negative mentions, neutral).
    pub rows: Vec<(String, usize, usize, usize)>,
}

/// Runs Figure 4 on the pharmaceutical web corpus.
pub fn fig4(scale: &ExperimentScale) -> Fig4Result {
    let corpus = pharma_web(scale.seed + 3, &scale.web);
    let subjects = pharma_subjects();
    let spotter = wf_spotter::Spotter::new(&subjects);
    let miner = SentimentMiner::with_default_resources();
    let mut counts: std::collections::BTreeMap<String, (usize, usize, usize)> =
        std::collections::BTreeMap::new();
    for doc in &corpus.d_plus {
        let records = miner.analyze_with_spotter(&doc.text(), &subjects, &spotter);
        for (subject, _, polarity) in mention_polarities(&records) {
            let c = counts.entry(subject).or_insert((0, 0, 0));
            match polarity {
                Polarity::Positive => c.0 += 1,
                Polarity::Negative => c.1 += 1,
                Polarity::Neutral => c.2 += 1,
            }
        }
    }
    let rows = counts
        .into_iter()
        .enumerate()
        .map(|(i, (_, (pos, neg, neu)))| {
            let masked = format!("Product {}", (b'A' + (i as u8 % 26)) as char);
            (masked, pos, neg, neu)
        })
        .collect();
    Fig4Result { rows }
}

fn pharma_subjects() -> SubjectList {
    let mut b = SubjectList::builder();
    for p in wf_corpus::vocab::PHARMA_PRODUCTS {
        b = b.subject(p, [p.to_string()]);
    }
    b.build()
}

/// Figure 5: sentiment-bearing sentences for a given product, with the
/// subject spot marked by XML tags (the Web interface listing).
#[derive(Debug, Clone)]
pub struct Fig5Result {
    pub subject: String,
    /// (polarity, marked sentence).
    pub sentences: Vec<(Polarity, String)>,
}

/// Runs Figure 5 for the first pharmaceutical product.
pub fn fig5(scale: &ExperimentScale) -> Fig5Result {
    let corpus = pharma_web(scale.seed + 3, &scale.web);
    let subject = wf_corpus::vocab::PHARMA_PRODUCTS[0].to_string();
    let subjects = SubjectList::builder()
        .subject(&subject, [subject.clone()])
        .build();
    let spotter = wf_spotter::Spotter::new(&subjects);
    let miner = SentimentMiner::with_default_resources();
    let mut sentences = Vec::new();
    for doc in &corpus.d_plus {
        let text = doc.text();
        let records = miner.analyze_with_spotter(&text, &subjects, &spotter);
        for record in records {
            if !record.is_sentiment() {
                continue;
            }
            let ctx = form_context(
                &text,
                &[record.sentence_span],
                record.spot_span,
                ContextWindowRule::default(),
            );
            if let Some(ctx) = ctx {
                sentences.push((record.polarity, ctx.marked_text));
            }
        }
    }
    Fig5Result { subject, sentences }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentScale {
        ExperimentScale::quick()
    }

    #[test]
    fn fig1_pipeline_end_to_end() {
        let r = fig1(&quick());
        assert_eq!(r.ingested_docs, quick().camera.n_plus);
        assert_eq!(r.report.entities, r.ingested_docs);
        assert_eq!(r.report.indexed_docs, r.ingested_docs);
        assert!(r.report.distinct_concepts > 0, "miners must annotate");
        assert_eq!(r.report.nodes, quick().cluster_nodes);
    }

    #[test]
    fn fig2_produces_percentages() {
        let r = fig2(&quick());
        assert_eq!(r.features.len(), 3);
        assert!(!r.products.is_empty());
        for (_, pcts) in &r.products {
            for &p in pcts {
                assert!((0.0..=100.0).contains(&p));
            }
        }
    }

    #[test]
    fn fig3_queries_return_hits() {
        let r = fig3(&quick());
        assert!(r.indexed_docs > 0);
        let total_hits: usize = r.queries.iter().map(|(_, p, n, _)| p + n).sum();
        assert!(total_hits > 0, "sentiment index must serve hits");
    }

    #[test]
    fn fig4_masks_product_names() {
        let r = fig4(&quick());
        assert!(!r.rows.is_empty());
        for (name, _, _, _) in &r.rows {
            assert!(name.starts_with("Product "), "{name}");
        }
    }

    #[test]
    fn fig5_lists_marked_sentences() {
        let r = fig5(&quick());
        assert!(!r.sentences.is_empty());
        for (pol, text) in &r.sentences {
            assert!(pol.is_sentiment());
            assert!(text.contains("<subject>"), "{text}");
        }
    }
}

//! Evaluation metrics, following the paper's definitions.
//!
//! Predictions are 3-class (+/−/neutral) per (sentence, subject) mention.
//! Precision and recall score the sentiment-bearing predictions; accuracy
//! includes the neutral cases, "as ReviewSeer did".

use wf_corpus::CaseClass;
use wf_types::Polarity;

/// One scored prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    pub gold: Polarity,
    pub predicted: Polarity,
    pub case: CaseClass,
}

/// Aggregate scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scores {
    /// correct sentiment predictions / all sentiment predictions.
    pub precision: f64,
    /// correct sentiment predictions / all gold sentiment cases.
    pub recall: f64,
    /// exact 3-class agreement over all cases.
    pub accuracy: f64,
    pub total: usize,
    pub gold_sentiment: usize,
    pub predicted_sentiment: usize,
    pub correct_sentiment: usize,
}

/// Scores a prediction set.
pub fn score(predictions: &[Prediction]) -> Scores {
    let total = predictions.len();
    let mut gold_sentiment = 0usize;
    let mut predicted_sentiment = 0usize;
    let mut correct_sentiment = 0usize;
    let mut exact = 0usize;
    for p in predictions {
        if p.gold.is_sentiment() {
            gold_sentiment += 1;
        }
        if p.predicted.is_sentiment() {
            predicted_sentiment += 1;
        }
        if p.predicted.is_sentiment() && p.predicted == p.gold {
            correct_sentiment += 1;
        }
        if p.predicted == p.gold {
            exact += 1;
        }
    }
    Scores {
        precision: ratio(correct_sentiment, predicted_sentiment),
        recall: ratio(correct_sentiment, gold_sentiment),
        accuracy: ratio(exact, total),
        total,
        gold_sentiment,
        predicted_sentiment,
        correct_sentiment,
    }
}

/// Scores with the paper's I-class removal: "using only clearly positive
/// or negative sentences about the given subject".
pub fn score_without_i_class(predictions: &[Prediction]) -> Scores {
    let filtered: Vec<Prediction> = predictions
        .iter()
        .copied()
        .filter(|p| !p.case.is_i_class() && p.gold.is_sentiment())
        .collect();
    score(&filtered)
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(gold: Polarity, predicted: Polarity) -> Prediction {
        Prediction {
            gold,
            predicted,
            case: CaseClass::Clear,
        }
    }

    #[test]
    fn perfect_predictions() {
        let preds = vec![
            p(Polarity::Positive, Polarity::Positive),
            p(Polarity::Negative, Polarity::Negative),
            p(Polarity::Neutral, Polarity::Neutral),
        ];
        let s = score(&preds);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.accuracy, 1.0);
    }

    #[test]
    fn false_positive_on_neutral_hurts_precision_not_recall() {
        let preds = vec![
            p(Polarity::Positive, Polarity::Positive),
            p(Polarity::Neutral, Polarity::Positive),
        ];
        let s = score(&preds);
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.accuracy, 0.5);
    }

    #[test]
    fn missed_sentiment_hurts_recall_not_precision() {
        let preds = vec![
            p(Polarity::Positive, Polarity::Positive),
            p(Polarity::Negative, Polarity::Neutral),
        ];
        let s = score(&preds);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
    }

    #[test]
    fn wrong_sign_hurts_both() {
        let preds = vec![p(Polarity::Positive, Polarity::Negative)];
        let s = score(&preds);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.accuracy, 0.0);
    }

    #[test]
    fn empty_prediction_set() {
        let s = score(&[]);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.accuracy, 0.0);
        assert_eq!(s.total, 0);
    }

    #[test]
    fn i_class_removal_keeps_clear_sentiment_only() {
        let preds = vec![
            Prediction {
                gold: Polarity::Positive,
                predicted: Polarity::Positive,
                case: CaseClass::Clear,
            },
            Prediction {
                gold: Polarity::Negative,
                predicted: Polarity::Positive,
                case: CaseClass::CaseI,
            },
            Prediction {
                gold: Polarity::Neutral,
                predicted: Polarity::Positive,
                case: CaseClass::CaseIII,
            },
            Prediction {
                gold: Polarity::Neutral,
                predicted: Polarity::Positive,
                case: CaseClass::Clear,
            },
        ];
        let s = score_without_i_class(&preds);
        // only the first survives (clear + gold sentiment)
        assert_eq!(s.total, 1);
        assert_eq!(s.accuracy, 1.0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.856), "85.6%");
        assert_eq!(pct(1.0), "100.0%");
    }
}

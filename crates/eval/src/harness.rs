//! Prediction harnesses: run each system over a gold corpus and produce
//! scored predictions per mention.

use crate::metrics::Prediction;
use wf_baselines::{CollocationClassifier, ReviewSeerClassifier};
use wf_corpus::{Corpus, GeneratedDoc};
use wf_sentiment::{mention_polarities, AnalyzerConfig, SentimentMiner, SubjectList};
use wf_types::Polarity;

/// Builds the subject list used to evaluate a corpus: all subjects its
/// gold mentions reference.
pub fn subjects_of(corpus: &Corpus) -> SubjectList {
    let mut names: Vec<String> = corpus
        .d_plus
        .iter()
        .flat_map(|d| d.mentions.iter().map(|m| m.subject.clone()))
        .collect();
    names.sort();
    names.dedup();
    let mut builder = SubjectList::builder();
    for name in &names {
        builder = builder.subject(name, [name.clone()]);
    }
    builder.build()
}

/// Runs the sentiment miner over every gold mention of the corpus.
pub fn run_sentiment_miner(corpus: &Corpus) -> Vec<Prediction> {
    run_sentiment_miner_with(corpus, AnalyzerConfig::default())
}

/// Runs the sentiment miner with selected relationship rules disabled.
pub fn run_sentiment_miner_with(corpus: &Corpus, config: AnalyzerConfig) -> Vec<Prediction> {
    let subjects = subjects_of(corpus);
    let spotter = wf_spotter::Spotter::new(&subjects);
    let miner = SentimentMiner::with_config(config);
    let mut predictions = Vec::new();
    for doc in &corpus.d_plus {
        predictions.extend(miner_predictions_for_doc(&miner, &subjects, &spotter, doc));
    }
    predictions
}

fn miner_predictions_for_doc(
    miner: &SentimentMiner,
    subjects: &SubjectList,
    spotter: &wf_spotter::Spotter,
    doc: &GeneratedDoc,
) -> Vec<Prediction> {
    let mut predictions = Vec::new();
    // analyze each distinct sentence once
    let mut cache: Vec<Option<Vec<(String, Polarity)>>> = vec![None; doc.sentences.len()];
    for mention in &doc.mentions {
        let idx = mention.sentence;
        if cache[idx].is_none() {
            let records = miner.analyze_with_spotter(&doc.sentences[idx], subjects, spotter);
            cache[idx] = Some(
                mention_polarities(&records)
                    .into_iter()
                    .map(|(subject, _, polarity)| (subject, polarity))
                    .collect(),
            );
        }
        let per_subject = cache[idx].as_ref().expect("just filled");
        let predicted = per_subject
            .iter()
            .find(|(s, _)| *s == mention.subject)
            .map(|(_, p)| *p)
            .unwrap_or(Polarity::Neutral);
        predictions.push(Prediction {
            gold: mention.polarity,
            predicted,
            case: mention.case,
        });
    }
    predictions
}

/// Runs the collocation baseline over every gold mention.
pub fn run_collocation(corpus: &Corpus) -> Vec<Prediction> {
    let clf = CollocationClassifier::new();
    let mut predictions = Vec::new();
    for doc in &corpus.d_plus {
        let mut cache: Vec<Option<Polarity>> = vec![None; doc.sentences.len()];
        for mention in &doc.mentions {
            let idx = mention.sentence;
            let predicted =
                *cache[idx].get_or_insert_with(|| clf.classify_sentence(&doc.sentences[idx]));
            predictions.push(Prediction {
                gold: mention.polarity,
                predicted,
                case: mention.case,
            });
        }
    }
    predictions
}

/// Trains a ReviewSeer-style classifier on review documents (document
/// labels), excluding a held-out tail of each collection.
pub fn train_reviewseer(training: &[&Corpus], holdout_fraction: f64) -> ReviewSeerClassifier {
    let mut docs: Vec<(String, Polarity)> = Vec::new();
    for corpus in training {
        let cut = train_cut(corpus.d_plus.len(), holdout_fraction);
        for doc in &corpus.d_plus[..cut] {
            if let Some(label) = doc.doc_label {
                docs.push((doc.text(), label));
            }
        }
    }
    ReviewSeerClassifier::train(&docs)
}

/// The number of leading documents used for training.
pub fn train_cut(n: usize, holdout_fraction: f64) -> usize {
    ((n as f64) * (1.0 - holdout_fraction)).floor() as usize
}

/// Document-level ReviewSeer accuracy on the held-out tail of a review
/// corpus (what ReviewSeer's 88.4% measures).
pub fn reviewseer_document_accuracy(
    clf: &ReviewSeerClassifier,
    corpus: &Corpus,
    holdout_fraction: f64,
) -> f64 {
    let cut = train_cut(corpus.d_plus.len(), holdout_fraction);
    let held_out = &corpus.d_plus[cut..];
    let mut correct = 0usize;
    let mut total = 0usize;
    for doc in held_out {
        let Some(label) = doc.doc_label else { continue };
        total += 1;
        if clf.classify(&doc.text()) == label {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Sentence-level ReviewSeer predictions over a corpus's gold mentions
/// (how the paper applies it to general web documents).
pub fn run_reviewseer_sentences(clf: &ReviewSeerClassifier, corpus: &Corpus) -> Vec<Prediction> {
    let mut predictions = Vec::new();
    for doc in &corpus.d_plus {
        for mention in &doc.mentions {
            predictions.push(Prediction {
                gold: mention.polarity,
                predicted: clf.classify(&doc.sentences[mention.sentence]),
                case: mention.case,
            });
        }
    }
    predictions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::score;
    use wf_corpus::{camera_reviews, petroleum_web, ReviewConfig, WebConfig};

    #[test]
    fn subjects_cover_all_mentions() {
        let corpus = camera_reviews(1, &ReviewConfig::small());
        let subjects = subjects_of(&corpus);
        for doc in &corpus.d_plus {
            for m in &doc.mentions {
                assert!(subjects.id_of(&m.subject).is_some(), "{}", m.subject);
            }
        }
    }

    #[test]
    fn miner_predictions_align_with_mentions() {
        let corpus = camera_reviews(2, &ReviewConfig::small());
        let preds = run_sentiment_miner(&corpus);
        let mentions: usize = corpus.d_plus.iter().map(|d| d.mentions.len()).sum();
        assert_eq!(preds.len(), mentions);
    }

    #[test]
    fn miner_beats_collocation_on_precision() {
        let corpus = camera_reviews(3, &ReviewConfig::small());
        let sm = score(&run_sentiment_miner(&corpus));
        let colloc = score(&run_collocation(&corpus));
        assert!(
            sm.precision > colloc.precision,
            "SM {} vs collocation {}",
            sm.precision,
            colloc.precision
        );
    }

    #[test]
    fn reviewseer_learns_review_documents() {
        // use a large collection: Naive Bayes document accuracy is noisy
        // on small held-out splits
        let config = ReviewConfig {
            n_plus: 240,
            ..ReviewConfig::small()
        };
        let corpus = camera_reviews(4, &config);
        let clf = train_reviewseer(&[&corpus], 0.25);
        let acc = reviewseer_document_accuracy(&clf, &corpus, 0.25);
        assert!(acc > 0.7, "document accuracy {acc}");
    }

    #[test]
    fn reviewseer_collapses_on_web_sentences() {
        let reviews = camera_reviews(5, &ReviewConfig::small());
        let clf = train_reviewseer(&[&reviews], 0.25);
        let web = petroleum_web(5, &WebConfig::small());
        let s = score(&run_reviewseer_sentences(&clf, &web));
        // most web mentions are gold-neutral; a classifier with no neutral
        // class cannot exceed the sentiment fraction
        assert!(s.accuracy < 0.6, "web accuracy {}", s.accuracy);
    }

    #[test]
    fn train_cut_boundaries() {
        assert_eq!(train_cut(100, 0.25), 75);
        assert_eq!(train_cut(0, 0.25), 0);
        assert_eq!(train_cut(10, 0.0), 10);
    }
}

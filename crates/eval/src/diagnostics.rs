//! Per-construction diagnostics: where the miner's errors live.
//!
//! The paper's discussion attributes the miner's misses to specific
//! construction classes (statistical-only phrasing, ambiguity, I-class
//! cases). Because the corpus carries gold case classes, we can report
//! accuracy per class directly — the error analysis behind the headline
//! numbers.

use crate::metrics::Prediction;
use std::collections::BTreeMap;
use wf_corpus::CaseClass;

/// Accuracy per case class.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseBreakdown {
    /// (class, correct, total), ordered by class name.
    pub rows: Vec<(CaseClass, usize, usize)>,
}

impl CaseBreakdown {
    /// Accuracy of a class, if present.
    pub fn accuracy(&self, case: CaseClass) -> Option<f64> {
        self.rows
            .iter()
            .find(|(c, _, _)| *c == case)
            .map(|(_, correct, total)| {
                if *total == 0 {
                    0.0
                } else {
                    *correct as f64 / *total as f64
                }
            })
    }
}

fn class_name(case: CaseClass) -> &'static str {
    match case {
        CaseClass::Clear => "clear",
        CaseClass::LexicalOnly => "lexical-only",
        CaseClass::Exotic => "exotic",
        CaseClass::Sarcasm => "sarcasm",
        CaseClass::Contrast => "contrast",
        CaseClass::NeutralPlain => "neutral-plain",
        CaseClass::NeutralDistractor => "neutral-distractor",
        CaseClass::CaseI => "case-i",
        CaseClass::CaseII => "case-ii",
        CaseClass::CaseIII => "case-iii",
    }
}

/// Breaks predictions down by gold case class.
pub fn case_breakdown(predictions: &[Prediction]) -> CaseBreakdown {
    let mut counts: BTreeMap<&'static str, (CaseClass, usize, usize)> = BTreeMap::new();
    for p in predictions {
        let entry = counts.entry(class_name(p.case)).or_insert((p.case, 0, 0));
        entry.2 += 1;
        if p.predicted == p.gold {
            entry.1 += 1;
        }
    }
    CaseBreakdown {
        rows: counts.into_values().collect(),
    }
}

/// Renders the breakdown as table rows (class, accuracy, n).
pub fn breakdown_rows(breakdown: &CaseBreakdown) -> Vec<Vec<String>> {
    breakdown
        .rows
        .iter()
        .map(|(case, correct, total)| {
            let acc = if *total == 0 {
                0.0
            } else {
                *correct as f64 / *total as f64
            };
            vec![
                class_name(*case).to_string(),
                crate::metrics::pct(acc),
                total.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_types::Polarity;

    fn p(gold: Polarity, predicted: Polarity, case: CaseClass) -> Prediction {
        Prediction {
            gold,
            predicted,
            case,
        }
    }

    #[test]
    fn groups_by_class() {
        let preds = vec![
            p(Polarity::Positive, Polarity::Positive, CaseClass::Clear),
            p(Polarity::Positive, Polarity::Neutral, CaseClass::Clear),
            p(Polarity::Negative, Polarity::Positive, CaseClass::Sarcasm),
        ];
        let b = case_breakdown(&preds);
        assert_eq!(b.accuracy(CaseClass::Clear), Some(0.5));
        assert_eq!(b.accuracy(CaseClass::Sarcasm), Some(0.0));
        assert_eq!(b.accuracy(CaseClass::Exotic), None);
    }

    #[test]
    fn rendered_rows_are_complete() {
        let preds = vec![p(
            Polarity::Neutral,
            Polarity::Neutral,
            CaseClass::NeutralPlain,
        )];
        let rows = breakdown_rows(&case_breakdown(&preds));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], "neutral-plain");
        assert_eq!(rows[0][1], "100.0%");
        assert_eq!(rows[0][2], "1");
    }

    #[test]
    fn miner_diagnostics_match_expectations() {
        // full-system behaviour per class on the review corpus: clear and
        // contrast are strong, sarcasm is systematically wrong, exotic is
        // missed (predicted neutral on gold sentiment)
        use crate::harness::run_sentiment_miner;
        use wf_corpus::{camera_reviews, ReviewConfig};
        let corpus = camera_reviews(
            20050405,
            &ReviewConfig {
                n_plus: 120,
                n_minus: 0,
                ..ReviewConfig::camera()
            },
        );
        let preds = run_sentiment_miner(&corpus);
        let b = case_breakdown(&preds);
        assert!(b.accuracy(CaseClass::Clear).unwrap() > 0.85);
        assert!(b.accuracy(CaseClass::Contrast).unwrap() > 0.8);
        assert!(b.accuracy(CaseClass::Sarcasm).unwrap() < 0.3);
        assert!(b.accuracy(CaseClass::Exotic).unwrap() < 0.3);
        assert!(b.accuracy(CaseClass::NeutralDistractor).unwrap() > 0.9);
    }
}

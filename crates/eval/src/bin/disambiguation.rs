//! The SUN/Sunday disambiguation study on an ambiguous brand name.

use wf_eval::experiments::disambiguation_study;
use wf_eval::metrics::pct;

fn main() {
    let r = disambiguation_study(20050405, 120, 180);
    println!("Disambiguation study: ambiguous brand \"Apex\" (camera vs summit)\n");
    println!(
        "on-topic spot fraction:        {}",
        pct(r.on_topic_fraction)
    );
    println!(
        "accept-all baseline accuracy:  {}",
        pct(r.baseline_accuracy)
    );
    println!("disambiguator verdict accuracy:{}", pct(r.verdict_accuracy));
    println!();
    println!(
        "spurious sentiment records from off-topic pages: {} -> {} after filtering",
        r.spurious_without, r.spurious_with
    );
    println!(
        "on-topic sentiment records kept: {}/{}",
        r.kept_on_topic, r.total_on_topic
    );
}

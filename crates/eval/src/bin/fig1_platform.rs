//! Regenerates Figure 1 (the WebFountain architecture) as a live run:
//! ingest → mine → index → report on the simulated cluster.

use wf_eval::experiments::{fig1, ExperimentScale};
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = fig1(&scale);
    println!("Figure 1. WebFountain platform dataflow (simulated cluster)\n");
    println!(
        "ingest:   {} docs, {} bytes in {:.3}s ({:.0} docs/s)",
        r.ingested_docs,
        r.ingested_bytes,
        r.ingest_secs,
        r.ingested_docs as f64 / r.ingest_secs.max(1e-9)
    );
    println!(
        "mining:   spotter + sentiment miner over {} nodes in {:.3}s ({:.0} docs/s)",
        r.report.nodes,
        r.mining_secs,
        r.ingested_docs as f64 / r.mining_secs.max(1e-9)
    );
    println!(
        "indexing: {} docs, {} terms, {} concepts in {:.3}s\n",
        r.report.indexed_docs, r.report.distinct_terms, r.report.distinct_concepts, r.indexing_secs
    );
    let rows: Vec<Vec<String>> = r
        .report
        .per_node_entities
        .iter()
        .enumerate()
        .map(|(i, n)| vec![format!("node:{i}"), n.to_string()])
        .collect();
    println!(
        "{}",
        render_table("Per-node entity balance", &["Node", "Entities"], &rows)
    );
}

//! Runs every experiment and prints a paper-vs-measured summary — the
//! data behind EXPERIMENTS.md. Pass `--quick` for reduced corpora and
//! `--json PATH` to also write a machine-readable results file.

use wf_eval::experiments::{
    fig1, fig2, fig3, fig4, fig5, table2, table3, table4, table5, ExperimentScale,
};
use wf_eval::metrics::pct;

fn json_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    println!(
        "# All experiments ({} scale)\n",
        if quick { "quick" } else { "paper" }
    );

    let t2 = table2(&scale);
    println!("## Table 2 — feature extraction (bBNP-L)");
    println!(
        "camera precision: measured {} vs paper 97%",
        pct(t2.camera_precision)
    );
    println!(
        "music precision:  measured {} vs paper 100%",
        pct(t2.music_precision)
    );
    println!(
        "camera top-5: {:?}",
        t2.camera_top
            .iter()
            .take(5)
            .map(|f| f.term.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "music top-5:  {:?}\n",
        t2.music_top
            .iter()
            .take(5)
            .map(|f| f.term.as_str())
            .collect::<Vec<_>>()
    );

    let t3 = table3(&scale);
    println!("## Table 3 — product vs feature references");
    println!(
        "products {} refs, features {} refs, ratio {:.1}x (paper 12.4x)\n",
        t3.product_total,
        t3.feature_total,
        t3.ratio()
    );

    let t4 = table4(&scale);
    println!("## Table 4 — product review datasets");
    println!(
        "SM          P {} (87%)  R {} (56%)  A {} (85.6%)",
        pct(t4.sm.precision),
        pct(t4.sm.recall),
        pct(t4.sm.accuracy)
    );
    println!(
        "Collocation P {} (18%)  R {} (70%)",
        pct(t4.collocation.precision),
        pct(t4.collocation.recall)
    );
    println!(
        "ReviewSeer  A {} (88.4%, document level)\n",
        pct(t4.reviewseer_doc_accuracy)
    );

    let t5 = table5(&scale);
    println!("## Table 5 — general web documents and news");
    for row in &t5.rows {
        println!(
            "SM ({:<20}) P {} (86-91%)  A {} (90-93%)",
            row.label,
            pct(row.sm.precision),
            pct(row.sm.accuracy)
        );
    }
    if let Some(web) = t5.rows.first() {
        println!(
            "ReviewSeer (Web)          A {} (38%)   w/o I-class {} (68%)\n",
            pct(web.reviewseer.accuracy),
            pct(web.reviewseer_without_i.accuracy)
        );
    }

    let f1 = fig1(&scale);
    println!("## Figure 1 — platform dataflow");
    println!(
        "{} docs over {} nodes; mine {:.2}s, index {:.2}s, {} concepts\n",
        f1.ingested_docs,
        f1.report.nodes,
        f1.mining_secs,
        f1.indexing_secs,
        f1.report.distinct_concepts
    );

    let f2 = fig2(&scale);
    println!("## Figure 2 — customer satisfaction chart");
    println!(
        "{} products x {} features charted\n",
        f2.products.len(),
        f2.features.len()
    );

    let f3 = fig3(&scale);
    println!("## Figure 3 — ad-hoc (mode B) sentiment queries");
    for (s, p, n, secs) in &f3.queries {
        println!("  {s}: +{p} / -{n} in {:.1}us", secs * 1e6);
    }

    let f4 = fig4(&scale);
    println!(
        "\n## Figure 4 — masked product matrix: {} rows",
        f4.rows.len()
    );

    let f5 = fig5(&scale);
    println!(
        "## Figure 5 — {} sentiment sentences listed for {}",
        f5.sentences.len(),
        f5.subject
    );

    if let Some(path) = json_path() {
        let results = serde_json::json!({
            "scale": if quick { "quick" } else { "paper" },
            "table2": {
                "camera_precision": t2.camera_precision,
                "music_precision": t2.music_precision,
                "camera_top": t2.camera_top.iter().map(|f| f.term.clone()).collect::<Vec<_>>(),
                "music_top": t2.music_top.iter().map(|f| f.term.clone()).collect::<Vec<_>>(),
            },
            "table3": {
                "product_total": t3.product_total,
                "feature_total": t3.feature_total,
                "ratio": t3.ratio(),
            },
            "table4": {
                "sm": {"precision": t4.sm.precision, "recall": t4.sm.recall, "accuracy": t4.sm.accuracy},
                "collocation": {"precision": t4.collocation.precision, "recall": t4.collocation.recall},
                "reviewseer_doc_accuracy": t4.reviewseer_doc_accuracy,
            },
            "table5": t5.rows.iter().map(|row| serde_json::json!({
                "domain": row.label,
                "sm_precision": row.sm.precision,
                "sm_accuracy": row.sm.accuracy,
                "reviewseer_accuracy": row.reviewseer.accuracy,
                "reviewseer_accuracy_without_i": row.reviewseer_without_i.accuracy,
            })).collect::<Vec<_>>(),
            "fig1": {"docs": f1.ingested_docs, "nodes": f1.report.nodes, "concepts": f1.report.distinct_concepts},
            "fig2": {"products": f2.products.len(), "features": f2.features},
            "fig3": f3.queries.iter().map(|(s, p, n, secs)| serde_json::json!({
                "subject": s, "positive": p, "negative": n, "latency_us": secs * 1e6,
            })).collect::<Vec<_>>(),
            "fig4_rows": f4.rows.len(),
            "fig5_sentences": f5.sentences.len(),
        });
        let rendered = serde_json::to_string_pretty(&results).expect("results serialize");
        std::fs::write(&path, rendered).expect("write results json");
        println!("\nresults written to {path}");
    }
}

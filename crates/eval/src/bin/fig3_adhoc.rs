//! Regenerates Figure 3: mode B — sentiment mining with no predefined
//! subjects. Offline NE-driven analysis + sentiment index, then real-time
//! subject queries.

use wf_eval::experiments::{fig3, ExperimentScale};
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = fig3(&scale);
    println!("Figure 3. Sentiment mining without a predefined subject list\n");
    println!(
        "offline pass: {} docs analyzed and indexed in {:.3}s\n",
        r.indexed_docs, r.offline_secs
    );
    let rows: Vec<Vec<String>> = r
        .queries
        .iter()
        .map(|(s, p, n, secs)| {
            vec![
                s.clone(),
                p.to_string(),
                n.to_string(),
                format!("{:.1}", secs * 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Real-time sentiment queries against the index",
            &["Subject", "+ hits", "- hits", "latency (us)"],
            &rows,
        )
    );
}

//! Regenerates Table 2: top 20 feature terms extracted by bBNP-L for the
//! digital camera and music domains, plus extraction precision
//! (paper: 97% camera, 100% music).

use wf_eval::experiments::{table2, ExperimentScale};
use wf_eval::metrics::pct;
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = table2(&scale);
    let rows: Vec<Vec<String>> = (0..20)
        .map(|i| {
            vec![
                (i + 1).to_string(),
                r.camera_top
                    .get(i)
                    .map(|f| f.term.clone())
                    .unwrap_or_default(),
                r.music_top
                    .get(i)
                    .map(|f| f.term.clone())
                    .unwrap_or_default(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 2. Top 20 feature terms extracted by bBNP-L (rank order)",
            &["#", "Digital Camera", "Music Albums"],
            &rows,
        )
    );
    println!(
        "feature extraction precision: camera {} (paper 97%), music {} (paper 100%)",
        pct(r.camera_precision),
        pct(r.music_precision)
    );
}

//! Regenerates Figure 5: the Web interface listing of sentiment-bearing
//! sentences for a given product, subject spots marked with XML tags.

use wf_eval::experiments::{fig5, ExperimentScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = fig5(&scale);
    println!(
        "Figure 5. Sentiment-bearing sentences for {} ({} shown)\n",
        r.subject,
        r.sentences.len().min(20)
    );
    for (polarity, text) in r.sentences.iter().take(20) {
        println!("[{polarity}] {text}");
    }
}

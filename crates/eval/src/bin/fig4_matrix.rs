//! Regenerates Figure 4: the GUI's product × sentiment matrix on the
//! pharmaceutical domain, product names masked as the paper does.

use wf_eval::experiments::{fig4, ExperimentScale};
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = fig4(&scale);
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|(name, pos, neg, neu)| {
            vec![
                name.clone(),
                pos.to_string(),
                neg.to_string(),
                neu.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 4. Sentiment mining result matrix (pharmaceutical web, names masked)",
            &["Product", "positive", "negative", "neutral"],
            &rows,
        )
    );
}

//! Regenerates the Figure 2 inset chart: "Digital Camera Customer
//! Satisfaction" — % of a product's pages with positive sentiment, per
//! feature (picture quality, battery, flash).

use wf_eval::experiments::{fig2, ExperimentScale};
use wf_eval::report::render_bar_chart;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = fig2(&scale);
    println!("Figure 2 (inset). Digital Camera Customer Satisfaction");
    println!("% of pages with positive sentiment\n");
    for (fi, feature) in r.features.iter().enumerate() {
        let series: Vec<(String, f64)> = r
            .products
            .iter()
            .map(|(p, pcts)| (p.clone(), pcts[fi]))
            .collect();
        println!("{}", render_bar_chart(&format!("[{feature}]"), &series, 40));
    }
}

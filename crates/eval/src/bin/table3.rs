//! Regenerates Table 3: product-name vs feature-term references in the
//! digital camera D+ collection (paper: features referenced ≈13× more).

use wf_eval::experiments::{table3, ExperimentScale};
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = table3(&scale);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for i in 0..7 {
        rows.push(vec![
            r.products
                .get(i)
                .map(|(n, _)| n.clone())
                .unwrap_or_default(),
            r.products
                .get(i)
                .map(|(_, c)| c.to_string())
                .unwrap_or_default(),
            r.features
                .get(i)
                .map(|(n, _)| n.clone())
                .unwrap_or_default(),
            r.features
                .get(i)
                .map(|(_, c)| c.to_string())
                .unwrap_or_default(),
        ]);
    }
    rows.push(vec![
        format!("{} Products", r.products.len()),
        r.product_total.to_string(),
        format!("{} Features", r.feature_count),
        r.feature_total.to_string(),
    ]);
    println!(
        "{}",
        render_table(
            "Table 3. Product name vs feature term references (digital camera D+)",
            &["Product", "# refs", "Feature", "# refs"],
            &rows,
        )
    );
    println!(
        "feature/product reference ratio: {:.1}x (paper: 12.4x)",
        r.ratio()
    );
}

//! Rule-ablation study: the contribution of each relationship-analysis
//! rule, measured on the Table 4 review evaluation.

use wf_eval::experiments::{analyzer_ablations, feature_extraction_ablations, ExperimentScale};
use wf_eval::metrics::pct;
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = analyzer_ablations(&scale);
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.label.clone(),
                pct(row.scores.precision),
                pct(row.scores.recall),
                pct(row.scores.accuracy),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: relationship-analysis rules (product review datasets)",
            &["Variant", "Precision", "Recall", "Accuracy"],
            &rows,
        )
    );

    let fx_rows: Vec<Vec<String>> = feature_extraction_ablations(&scale)
        .iter()
        .map(|r| {
            vec![
                r.heuristic.as_str().to_string(),
                format!("{:?}", r.metric),
                pct(r.precision_at_20),
                r.candidates.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Ablation: feature extraction design space (camera corpus)",
            &["Heuristic", "Metric", "P@20", "Candidates"],
            &fx_rows,
        )
    );
}

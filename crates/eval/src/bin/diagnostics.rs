//! Error analysis: the miner's accuracy per construction class on the
//! review evaluation — the breakdown behind Table 4.

use wf_corpus::camera_reviews;
use wf_eval::diagnostics::{breakdown_rows, case_breakdown};
use wf_eval::experiments::ExperimentScale;
use wf_eval::harness::run_sentiment_miner;
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let corpus = camera_reviews(scale.seed, &scale.camera);
    let preds = run_sentiment_miner(&corpus);
    let breakdown = case_breakdown(&preds);
    println!(
        "{}",
        render_table(
            "Sentiment miner accuracy per construction class (camera reviews)",
            &["class", "accuracy", "n"],
            &breakdown_rows(&breakdown),
        )
    );
    println!(
        "reading: sarcasm (gold-opposite surface) and exotic (no lexicon\n\
         words) are the systematic misses the paper attributes to\n\
         statistical/structural blind spots; neutral-distractor accuracy is\n\
         what separates the miner from the collocation baseline."
    );
}

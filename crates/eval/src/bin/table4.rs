//! Regenerates Table 4: sentiment extraction on the product review
//! datasets — the sentiment miner vs the collocation baseline vs
//! ReviewSeer (paper: SM 87 P / 56 R / 85.6 A; collocation 18 P / 70 R;
//! ReviewSeer 88.4 A at document level).

use wf_eval::experiments::{table4, ExperimentScale};
use wf_eval::metrics::pct;
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = table4(&scale);
    let rows = vec![
        vec![
            "SM (measured)".into(),
            pct(r.sm.precision),
            pct(r.sm.recall),
            pct(r.sm.accuracy),
        ],
        vec![
            "SM (paper)".into(),
            "87%".into(),
            "56%".into(),
            "85.6%".into(),
        ],
        vec![
            "Collocation (measured)".into(),
            pct(r.collocation.precision),
            pct(r.collocation.recall),
            "N/A".into(),
        ],
        vec![
            "Collocation (paper)".into(),
            "18%".into(),
            "70%".into(),
            "N/A".into(),
        ],
        vec![
            "ReviewSeer (measured)".into(),
            "N/A".into(),
            "N/A".into(),
            pct(r.reviewseer_doc_accuracy),
        ],
        vec![
            "ReviewSeer (paper)".into(),
            "N/A".into(),
            "N/A".into(),
            "88.4%".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Table 4. Performance comparison on the product review datasets",
            &["Algorithm", "Precision", "Recall", "Accuracy"],
            &rows,
        )
    );
    println!(
        "(mentions evaluated: {}, gold sentiment cases: {})",
        r.sm.total, r.sm.gold_sentiment
    );
}

//! Regenerates Table 5: the sentiment miner and ReviewSeer on general web
//! documents and news articles (paper: SM 86–91 P / 90–93 A; ReviewSeer
//! 38 A, 68 A without the I class).

use wf_eval::experiments::{table5, ExperimentScale};
use wf_eval::metrics::pct;
use wf_eval::report::render_table;

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let r = table5(&scale);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for row in &r.rows {
        rows.push(vec![
            format!("SM ({})", row.label),
            pct(row.sm.precision),
            pct(row.sm.accuracy),
            "N/A".into(),
        ]);
    }
    // ReviewSeer row: the paper reports one web-document number
    if let Some(web) = r.rows.first() {
        rows.push(vec![
            "ReviewSeer (Web, measured)".into(),
            "N/A".into(),
            pct(web.reviewseer.accuracy),
            pct(web.reviewseer_without_i.accuracy),
        ]);
    }
    rows.push(vec![
        "SM (paper)".into(),
        "86-91%".into(),
        "90-93%".into(),
        "N/A".into(),
    ]);
    rows.push(vec![
        "ReviewSeer (paper)".into(),
        "N/A".into(),
        "38%".into(),
        "68%".into(),
    ]);
    println!(
        "{}",
        render_table(
            "Table 5. General web documents and news articles",
            &[
                "System (domain)",
                "Precision",
                "Accuracy",
                "Acc. w/o I class"
            ],
            &rows,
        )
    );
}

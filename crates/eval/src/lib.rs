//! Evaluation: metrics, prediction harnesses, experiment runners and
//! report rendering for every table and figure in the paper.
//!
//! Each experiment has a library runner in [`experiments`] and a binary
//! (`cargo run -p wf-eval --bin table4`) that prints the paper-style
//! rows next to the measured values. `all_experiments` runs everything
//! and regenerates the data behind `EXPERIMENTS.md`.

pub mod diagnostics;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod report;

pub use diagnostics::{breakdown_rows, case_breakdown, CaseBreakdown};
pub use experiments::ExperimentScale;
pub use metrics::{pct, score, score_without_i_class, Prediction, Scores};

//! Plain-text report rendering: aligned tables and horizontal bar charts,
//! used by the per-experiment binaries to print paper-style output.

/// Renders an aligned text table. `rows` includes the body only; pass the
/// header separately.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a horizontal bar chart of labeled percentages (0..=100).
pub fn render_bar_chart(title: &str, series: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in series {
        let filled = ((value / 100.0) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:<label_w$}  {:>5.1}%  {}{}\n",
            label,
            value,
            "#".repeat(filled.min(width)),
            " ".repeat(width.saturating_sub(filled)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = render_table(
            "T",
            &["name", "value"],
            &[
                vec!["short".into(), "1".into()],
                vec!["a-much-longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("short"));
        // the value column starts at the same offset in both body rows
        let off_a = lines[3].find('1').unwrap();
        let off_b = lines[4].find("22").unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let out = render_bar_chart(
            "C",
            &[
                ("full".into(), 100.0),
                ("half".into(), 50.0),
                ("none".into(), 0.0),
            ],
            10,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[1].matches('#').count(), 10);
        assert_eq!(lines[2].matches('#').count(), 5);
        assert_eq!(lines[3].matches('#').count(), 0);
    }

    #[test]
    fn empty_inputs() {
        let t = render_table("T", &[], &[]);
        assert!(t.starts_with("T"));
        let c = render_bar_chart("C", &[], 10);
        assert_eq!(c, "C\n");
    }
}

//! A ReviewSeer-style statistical opinion classifier.
//!
//! ReviewSeer (Dave, Lawrence & Pennock, WWW 2003) is "a document level
//! opinion classifier that uses mainly statistical techniques"; the paper
//! reports 88.4% accuracy on review articles but only 38% when "applied
//! [...] on the individual sentences with a subject word" from general web
//! documents. ReviewSeer is closed source; the canonical stand-in for a
//! statistical n-gram opinion classifier is multinomial Naive Bayes over
//! unigrams + bigrams with Laplace smoothing, trained on document-level
//! labels — including its defining limitation of having *no neutral
//! class*, which is exactly the failure mode the paper measures.

use std::collections::HashMap;
use wf_types::Polarity;

/// Feature extraction: lower-cased unigrams and bigrams.
fn features(text: &str) -> Vec<String> {
    let words: Vec<String> = text
        .split(|c: char| !c.is_alphanumeric() && c != '\'')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect();
    let mut feats = words.clone();
    for pair in words.windows(2) {
        feats.push(format!("{} {}", pair[0], pair[1]));
    }
    feats
}

#[derive(Debug, Clone, Default)]
struct ClassModel {
    /// Feature → count.
    counts: HashMap<String, u64>,
    /// Total feature tokens in the class.
    total: u64,
    /// Training documents in the class.
    docs: u64,
}

/// Multinomial Naive Bayes over unigrams + bigrams, two classes.
#[derive(Debug, Clone, Default)]
pub struct ReviewSeerClassifier {
    positive: ClassModel,
    negative: ClassModel,
    vocabulary: u64,
}

impl ReviewSeerClassifier {
    /// Trains from document-level labeled reviews. Neutral labels are
    /// skipped — the classifier, like ReviewSeer, only knows pos/neg.
    pub fn train<S: AsRef<str>>(documents: &[(S, Polarity)]) -> Self {
        let mut clf = ReviewSeerClassifier::default();
        let mut vocab: HashMap<String, ()> = HashMap::new();
        for (text, label) in documents {
            let model = match label {
                Polarity::Positive => &mut clf.positive,
                Polarity::Negative => &mut clf.negative,
                Polarity::Neutral => continue,
            };
            model.docs += 1;
            for feat in features(text.as_ref()) {
                vocab.entry(feat.clone()).or_insert(());
                *model.counts.entry(feat).or_insert(0) += 1;
                model.total += 1;
            }
        }
        clf.vocabulary = vocab.len() as u64;
        clf
    }

    /// Log-probability ratio log P(+|text) − log P(−|text). Positive means
    /// the positive class is more likely.
    pub fn log_odds(&self, text: &str) -> f64 {
        let total_docs = (self.positive.docs + self.negative.docs).max(1) as f64;
        let mut score = ((self.positive.docs.max(1)) as f64 / total_docs).ln()
            - ((self.negative.docs.max(1)) as f64 / total_docs).ln();
        let v = self.vocabulary.max(1) as f64;
        for feat in features(text) {
            let p_pos = (self.positive.counts.get(&feat).copied().unwrap_or(0) as f64 + 1.0)
                / (self.positive.total as f64 + v);
            let p_neg = (self.negative.counts.get(&feat).copied().unwrap_or(0) as f64 + 1.0)
                / (self.negative.total as f64 + v);
            score += p_pos.ln() - p_neg.ln();
        }
        score
    }

    /// Classifies text as Positive or Negative — never Neutral, mirroring
    /// the document-level classifier the paper compares against.
    pub fn classify(&self, text: &str) -> Polarity {
        if self.log_odds(text) >= 0.0 {
            Polarity::Positive
        } else {
            Polarity::Negative
        }
    }

    /// Number of training documents seen.
    pub fn training_docs(&self) -> u64 {
        self.positive.docs + self.negative.docs
    }

    /// Vocabulary size (distinct unigrams + bigrams).
    pub fn vocabulary_size(&self) -> u64 {
        self.vocabulary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_classifier() -> ReviewSeerClassifier {
        let docs: Vec<(String, Polarity)> = vec![
            (
                "great camera excellent pictures love it".into(),
                Polarity::Positive,
            ),
            (
                "amazing quality wonderful lens superb value".into(),
                Polarity::Positive,
            ),
            (
                "excellent battery great zoom highly recommend".into(),
                Polarity::Positive,
            ),
            (
                "terrible camera awful pictures hate it".into(),
                Polarity::Negative,
            ),
            (
                "poor quality horrible lens worthless junk".into(),
                Polarity::Negative,
            ),
            (
                "awful battery bad zoom do not buy".into(),
                Polarity::Negative,
            ),
        ];
        ReviewSeerClassifier::train(&docs)
    }

    #[test]
    fn learns_separable_data() {
        let clf = toy_classifier();
        assert_eq!(
            clf.classify("great pictures and excellent zoom"),
            Polarity::Positive
        );
        assert_eq!(
            clf.classify("terrible quality and awful value"),
            Polarity::Negative
        );
    }

    #[test]
    fn never_predicts_neutral() {
        let clf = toy_classifier();
        // a totally off-topic sentence still gets a pos/neg label — the
        // failure mode the paper measures on general web documents
        let p = clf.classify("the meeting is on tuesday at noon");
        assert!(p == Polarity::Positive || p == Polarity::Negative);
    }

    #[test]
    fn bigrams_capture_negation_sometimes() {
        let docs: Vec<(String, Polarity)> = vec![
            ("not good at all".into(), Polarity::Negative),
            ("not good never again".into(), Polarity::Negative),
            ("good camera good value".into(), Polarity::Positive),
            ("good lens good grip".into(), Polarity::Positive),
        ];
        let clf = ReviewSeerClassifier::train(&docs);
        assert_eq!(clf.classify("not good"), Polarity::Negative);
        assert_eq!(clf.classify("good good"), Polarity::Positive);
    }

    #[test]
    fn neutral_training_docs_are_skipped() {
        let docs: Vec<(String, Polarity)> = vec![
            ("fine".into(), Polarity::Neutral),
            ("great".into(), Polarity::Positive),
            ("bad".into(), Polarity::Negative),
        ];
        let clf = ReviewSeerClassifier::train(&docs);
        assert_eq!(clf.training_docs(), 2);
    }

    #[test]
    fn log_odds_sign_matches_classification() {
        let clf = toy_classifier();
        for text in ["excellent wonderful", "terrible horrible", "tuesday noon"] {
            let odds = clf.log_odds(text);
            let label = clf.classify(text);
            assert_eq!(odds >= 0.0, label == Polarity::Positive, "{text}");
        }
    }

    #[test]
    fn empty_model_defaults_positive_priorless() {
        let clf = ReviewSeerClassifier::default();
        // degenerate but must not panic or divide by zero
        let _ = clf.classify("anything");
    }

    #[test]
    fn feature_extraction_includes_bigrams() {
        let f = features("Great camera here");
        assert!(f.contains(&"great".to_string()));
        assert!(f.contains(&"great camera".to_string()));
        assert!(f.contains(&"camera here".to_string()));
    }
}

//! The collocation baseline.
//!
//! Per the paper: "The collocation algorithm assigns the polarity of a
//! sentiment term to a subject term in the same sentence. If positive and
//! negative sentiment terms co-exist, the polarity with more counts is
//! selected." It ignores sentence structure entirely, which is why its
//! precision collapses (18% in the paper) while recall stays high (70%).

use wf_lexicon::SentimentLexicon;
use wf_nlp::{lemma, tokenizer, PosTagger};
use wf_types::Polarity;

/// The collocation classifier.
pub struct CollocationClassifier {
    lexicon: &'static SentimentLexicon,
    tagger: PosTagger,
}

impl Default for CollocationClassifier {
    fn default() -> Self {
        Self::new()
    }
}

impl CollocationClassifier {
    pub fn new() -> Self {
        CollocationClassifier {
            lexicon: SentimentLexicon::default_lexicon(),
            tagger: PosTagger::new(),
        }
    }

    /// Classifies a sentence containing a subject term: the majority
    /// polarity of all sentiment terms co-occurring in the sentence,
    /// regardless of what they are about.
    pub fn classify_sentence(&self, sentence: &str) -> Polarity {
        let tokens = tokenizer::tokenize(sentence);
        let tags = self.tagger.tag_sentence(&tokens);
        let mut positive = 0usize;
        let mut negative = 0usize;
        for (token, &tag) in tokens.iter().zip(&tags) {
            let key = lemma::lemmatize(&token.lower(), tag);
            if let Some(p) = self.lexicon.polarity_any_pos(&key) {
                match p {
                    Polarity::Positive => positive += 1,
                    Polarity::Negative => negative += 1,
                    Polarity::Neutral => {}
                }
            }
        }
        match positive.cmp(&negative) {
            std::cmp::Ordering::Greater => Polarity::Positive,
            std::cmp::Ordering::Less => Polarity::Negative,
            std::cmp::Ordering::Equal => Polarity::Neutral,
        }
    }

    /// Raw (positive, negative) sentiment-term counts of a sentence.
    pub fn term_counts(&self, sentence: &str) -> (usize, usize) {
        let tokens = tokenizer::tokenize(sentence);
        let tags = self.tagger.tag_sentence(&tokens);
        let mut counts = (0usize, 0usize);
        for (token, &tag) in tokens.iter().zip(&tags) {
            let key = lemma::lemmatize(&token.lower(), tag);
            match self.lexicon.polarity_any_pos(&key) {
                Some(Polarity::Positive) => counts.0 += 1,
                Some(Polarity::Negative) => counts.1 += 1,
                _ => {}
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_positive() {
        let c = CollocationClassifier::new();
        assert_eq!(
            c.classify_sentence("The excellent camera takes great pictures despite one flaw."),
            Polarity::Positive
        );
    }

    #[test]
    fn majority_negative() {
        let c = CollocationClassifier::new();
        assert_eq!(
            c.classify_sentence("The terrible menu and the awful battery ruin a good idea."),
            Polarity::Negative
        );
    }

    #[test]
    fn tie_is_neutral() {
        let c = CollocationClassifier::new();
        assert_eq!(
            c.classify_sentence("An excellent lens but a terrible battery."),
            Polarity::Neutral
        );
    }

    #[test]
    fn no_sentiment_terms_is_neutral() {
        let c = CollocationClassifier::new();
        assert_eq!(
            c.classify_sentence("The camera has a memory card slot."),
            Polarity::Neutral
        );
    }

    #[test]
    fn blind_to_targets() {
        // the sentiment is about the pictures, not the T series — the
        // collocation baseline cannot tell (the paper's key criticism)
        let c = CollocationClassifier::new();
        assert_eq!(
            c.classify_sentence("Unlike the T series, the NR70 takes excellent pictures."),
            Polarity::Positive
        );
    }

    #[test]
    fn term_counts_match() {
        let c = CollocationClassifier::new();
        assert_eq!(
            c.term_counts("An excellent lens but a terrible battery."),
            (1, 1)
        );
    }
}

//! Baseline sentiment classifiers the paper compares against.
//!
//! - [`collocation`]: the collocation algorithm — majority polarity of
//!   sentiment terms co-occurring in the sentence, blind to targets;
//! - [`reviewseer`]: a ReviewSeer-style statistical classifier —
//!   multinomial Naive Bayes over unigrams + bigrams with document-level
//!   training labels and no neutral class.

pub mod collocation;
pub mod reviewseer;

pub use collocation::CollocationClassifier;
pub use reviewseer::ReviewSeerClassifier;

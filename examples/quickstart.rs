//! Quickstart: target-level sentiment analysis in a few lines.
//!
//! Run with: `cargo run --example quickstart`

use webfountain_sentiment::prelude::*;

fn main() {
    // 1. Build a miner over the embedded sentiment lexicon and pattern
    //    database.
    let miner = SentimentMiner::with_default_resources();

    // 2. Declare the subjects you care about, with surface variants
    //    grouped into synonym sets.
    let subjects = SubjectList::builder()
        .subject("NR70", ["NR70", "NR70 series"])
        .subject("T series CLIEs", ["T series CLIEs", "T series"])
        .subject("Sony PDA", ["Sony PDA"])
        .build();

    // 3. Analyze text. Each subject occurrence gets its own sentiment —
    //    this is the paper's headline example, where a document-level
    //    classifier would label everything positive.
    let text = "As with every Sony PDA before it, the NR70 series is equipped \
                with Sony's own Memory Stick expansion. \
                Unlike the more recent T series CLIEs, the NR70 does not \
                require an add-on adapter for MP3 playback, which is \
                certainly a welcome change.";

    println!("input:\n  {text}\n");
    println!("per-mention sentiment:");
    let records = miner.analyze_text(text, &subjects);
    for (subject, sentence, polarity) in
        webfountain_sentiment::sentiment::mention_polarities(&records)
    {
        println!(
            "  {subject:<16} {polarity}   (sentence at bytes {}..{})",
            sentence.start, sentence.end
        );
    }

    // 4. Records carry evidence you can inspect.
    println!("\nevidence:");
    for r in records.iter().filter(|r| r.is_sentiment()) {
        println!("  {:<16} {}  [{}]", r.subject, r.polarity, r.detail);
    }
}

//! Ad-hoc sentiment queries (mode B): no predefined subject list.
//!
//! The named entity spotter discovers subjects offline, the sentiment
//! miner annotates every entity, and the conceptual index serves
//! real-time `(subject, polarity)` queries — the paper's Figure 3 flow
//! feeding the Figure 5 sentence listing.
//!
//! Run with: `cargo run --example adhoc_query`

use webfountain_sentiment::corpus::{pharma_web, WebConfig};
use webfountain_sentiment::platform::{Cluster, Ingestor, MinerPipeline, RawDocument, SourceKind};
use webfountain_sentiment::sentiment::{AdhocSentimentMiner, SentimentQueryService};
use webfountain_sentiment::types::Polarity;

fn main() {
    // a pharmaceutical-domain web crawl
    let corpus = pharma_web(
        7,
        &WebConfig {
            n_docs: 120,
            ..WebConfig::standard()
        },
    );
    let cluster = Cluster::new(4).expect("cluster");
    {
        let mut ingest = Ingestor::new(cluster.store());
        for (i, doc) in corpus.d_plus.iter().enumerate() {
            ingest.ingest(RawDocument::new(
                format!("web://pharma/{i}"),
                SourceKind::Web,
                doc.text(),
            ));
        }
    }

    // offline: discover entities, analyze, index
    let t = std::time::Instant::now();
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(AdhocSentimentMiner::new())));
    cluster.rebuild_index();
    println!(
        "offline pass over {} docs in {:.2}s; {} conceptual tokens indexed\n",
        cluster.store().len(),
        t.elapsed().as_secs_f64(),
        cluster.indexer().concept_count()
    );

    // online: query any subject the crawl happened to mention
    for subject in ["Veloxin", "Cardiplex", "Neurovan"] {
        let t = std::time::Instant::now();
        let negatives = SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            subject,
            Some(Polarity::Negative),
        )
        .expect("query");
        let positives = SentimentQueryService::query(
            cluster.indexer(),
            cluster.store(),
            subject,
            Some(Polarity::Positive),
        )
        .expect("query");
        println!(
            "{subject}: {} positive / {} negative mentions ({:.1} us)",
            positives.len(),
            negatives.len(),
            t.elapsed().as_secs_f64() * 1e6
        );
        for hit in negatives.iter().take(3) {
            println!("  [-] {} ({})", hit.sentence, hit.doc);
        }
        for hit in positives.iter().take(3) {
            println!("  [+] {} ({})", hit.sentence, hit.doc);
        }
        println!();
    }
}

//! Market-trend tracking: the reputation application's time dimension.
//!
//! Ingests six months of review pages whose tone drifts (one brand
//! improves, one declines), mines sentiment with the mode-A pipeline, and
//! reports per-brand reputation trends.
//!
//! Run with: `cargo run --example trend_tracking`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use webfountain_sentiment::platform::{Cluster, Ingestor, MinerPipeline, RawDocument, SourceKind};
use webfountain_sentiment::sentiment::{
    sentiment_trends, SentimentEntityMiner, SubjectList, TrendDirection,
};
use webfountain_sentiment::types::Polarity;

/// Generates one review sentence for a brand with the given polarity.
fn review_sentence(brand: &str, polarity: Polarity, pick: usize) -> String {
    match polarity {
        Polarity::Positive => [
            format!("The {brand} takes excellent pictures."),
            format!("The {brand} is superb."),
            format!("I am impressed by the {brand}."),
        ][pick % 3]
            .clone(),
        _ => [
            format!("The {brand} takes blurry pictures."),
            format!("The {brand} is terrible."),
            format!("I am disappointed by the {brand}."),
        ][pick % 3]
            .clone(),
    }
}

fn main() {
    let months = [
        "2004-01", "2004-02", "2004-03", "2004-04", "2004-05", "2004-06",
    ];
    let mut rng = StdRng::seed_from_u64(13);
    let cluster = Cluster::new(4).expect("cluster");
    {
        let mut ingest = Ingestor::new(cluster.store());
        for (m, month) in months.iter().enumerate() {
            // Canon's satisfaction climbs from 20% to 95%; Nikon's falls
            let canon_p = 0.2 + 0.15 * m as f64;
            let nikon_p = 0.9 - 0.12 * m as f64;
            for i in 0..12 {
                let canon_pol = if rng.random_bool(canon_p) {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                };
                let nikon_pol = if rng.random_bool(nikon_p) {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                };
                let text = format!(
                    "{} {}",
                    review_sentence("Canon", canon_pol, i),
                    review_sentence("Nikon", nikon_pol, i + 1)
                );
                ingest.ingest(
                    RawDocument::new(format!("web://{month}/{i}"), SourceKind::Web, text)
                        .with_metadata("month", *month),
                );
            }
        }
    }

    let subjects = SubjectList::builder()
        .subject("Canon", ["Canon"])
        .subject("Nikon", ["Nikon"])
        .build();
    cluster.run_pipeline(&MinerPipeline::new().add(Box::new(SentimentEntityMiner::new(subjects))));

    println!("monthly satisfaction (positive share of sentiment mentions):\n");
    for series in sentiment_trends(cluster.store(), "month") {
        let direction = match series.direction(0.02) {
            TrendDirection::Improving => "improving",
            TrendDirection::Declining => "DECLINING",
            TrendDirection::Flat => "flat",
        };
        print!("{:<8}", series.subject);
        for point in &series.points {
            match point.tally.satisfaction() {
                Some(s) => print!(" {:>4.0}%", 100.0 * s),
                None => print!("    -"),
            }
        }
        println!("   slope {:+.3}/month → {}", series.slope(), direction);
    }
}

//! Reputation management (mode A): the paper's motivating application.
//!
//! Boots a simulated WebFountain cluster, ingests a digital-camera review
//! corpus, runs the spotter + sentiment miner pipeline across all nodes,
//! and prints a per-product reputation dashboard with per-feature
//! satisfaction (the Figure 2 scenario).
//!
//! Run with: `cargo run --example reputation_dashboard`

use std::collections::BTreeMap;
use webfountain_sentiment::corpus::{camera_reviews, ReviewConfig};
use webfountain_sentiment::platform::{Cluster, Ingestor, MinerPipeline, RawDocument, SourceKind};
use webfountain_sentiment::sentiment::{SentimentEntityMiner, SpotterMiner, SubjectList};
use webfountain_sentiment::types::Polarity;

fn main() {
    // corpora: a reduced-scale camera review crawl
    let corpus = camera_reviews(
        42,
        &ReviewConfig {
            n_plus: 120,
            n_minus: 0,
            ..ReviewConfig::camera()
        },
    );

    // platform: 8-node cluster
    let cluster = Cluster::new(8).expect("cluster");
    {
        let mut ingest = Ingestor::new(cluster.store());
        for (i, doc) in corpus.d_plus.iter().enumerate() {
            ingest.ingest(
                RawDocument::new(format!("web://reviews/{i}"), SourceKind::Web, doc.text())
                    .with_metadata("domain", "digital-camera"),
            );
        }
        println!(
            "ingested {} review pages ({} bytes)",
            ingest.stats().documents,
            ingest.stats().bytes
        );
    }

    // subjects: the tracked brands plus the features the paper charts
    let mut subjects = SubjectList::builder();
    for p in webfountain_sentiment::corpus::vocab::CAMERA_PRODUCTS {
        subjects = subjects.subject(p, [p.to_string()]);
    }
    for f in ["picture quality", "battery", "flash"] {
        subjects = subjects.subject(f, [f.to_string()]);
    }
    let subjects = subjects.build();

    // mine in parallel across the cluster
    let pipeline = MinerPipeline::new()
        .add(Box::new(SpotterMiner::new(subjects.clone())))
        .add(Box::new(SentimentEntityMiner::new(subjects)));
    let stats = cluster.run_pipeline(&pipeline);
    println!(
        "mined {} entities ({} failed) on {} nodes\n",
        stats.processed,
        stats.failed,
        cluster.nodes().len()
    );

    // aggregate reputation per subject from the sentiment annotations
    let mut reputation: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    cluster.store().for_each(|entity| {
        for ann in entity.annotations_of("sentiment") {
            let subject = ann.attr("subject").unwrap_or("?").to_string();
            let entry = reputation.entry(subject).or_insert((0, 0));
            match ann.attr("polarity").and_then(Polarity::parse) {
                Some(Polarity::Positive) => entry.0 += 1,
                Some(Polarity::Negative) => entry.1 += 1,
                _ => {}
            }
        }
    });

    println!("reputation dashboard (sentiment-bearing mentions):");
    println!("{:<18} {:>4} {:>4}  net", "subject", "+", "-");
    println!("{}", "-".repeat(36));
    for (subject, (pos, neg)) in &reputation {
        let net = *pos as i64 - *neg as i64;
        let bar = if net >= 0 {
            "+".repeat((net as usize).min(30))
        } else {
            "-".repeat(((-net) as usize).min(30))
        };
        println!("{subject:<18} {pos:>4} {neg:>4}  {bar}");
    }
}

//! Topic feature discovery: the paper's Section 4.1 pipeline on its own.
//!
//! Extracts candidate feature terms with the bBNP heuristic from a
//! topic-focused collection, ranks them with the Dunning likelihood-ratio
//! test against a background collection, and prints the scored list —
//! then uses the discovered features as sentiment subjects.
//!
//! Run with: `cargo run --example feature_discovery`

use webfountain_sentiment::corpus::{camera_reviews, ReviewConfig};
use webfountain_sentiment::features::{FeatureExtractor, Selection, CHI2_99};
use webfountain_sentiment::prelude::*;

fn main() {
    let corpus = camera_reviews(
        11,
        &ReviewConfig {
            n_plus: 100,
            n_minus: 400,
            ..ReviewConfig::camera()
        },
    );

    // 1. bBNP candidates + likelihood-ratio ranking
    let extractor = FeatureExtractor::new();
    let features = extractor.select(
        &corpus.d_plus_texts(),
        &corpus.d_minus_texts(),
        Selection::Confidence(CHI2_99),
    );
    println!("discovered feature terms (−2logλ > χ²₉₉ = 6.635):\n");
    println!("{:<20} {:>10}  {:>5} {:>5}", "term", "-2logλ", "D+", "D-");
    println!("{}", "-".repeat(45));
    for f in features.iter().take(15) {
        println!(
            "{:<20} {:>10.1}  {:>5} {:>5}",
            f.term, f.score, f.counts.c11, f.counts.c12
        );
    }

    // 2. feed the discovered features straight into the sentiment miner
    let mut subjects = SubjectList::builder();
    for f in features.iter().take(8) {
        subjects = subjects.subject(&f.term, [f.term.clone()]);
    }
    let subjects = subjects.build();
    let miner = SentimentMiner::with_default_resources();

    let mut pos = 0usize;
    let mut neg = 0usize;
    for doc in corpus.d_plus.iter().take(40) {
        for record in miner.analyze_text(&doc.text(), &subjects) {
            match record.polarity {
                Polarity::Positive => pos += 1,
                Polarity::Negative => neg += 1,
                Polarity::Neutral => {}
            }
        }
    }
    println!("\nsentiment on discovered features over 40 reviews: {pos} positive, {neg} negative");
}
